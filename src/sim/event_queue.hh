/**
 * @file
 * The discrete-event simulation kernel.
 *
 * An EventQueue drives a set of actors (CPUs, link engines, wires,
 * peripherals) that interact exclusively through scheduled events,
 * which makes multi-transputer co-simulation exact at event
 * granularity.
 *
 * Determinism.  Events are dispatched in the total order
 * (tick, actor, channel, seq): `actor` is the component the event
 * acts upon, `channel` is a structural source within that actor (CPU
 * step, timer, per-link wire, ...) and `seq` is a per-channel FIFO
 * sequence number assigned by the scheduling side.  Because the order
 * never depends on heap internals or on *when* an event was inserted
 * relative to other actors' activity, a network partitioned across
 * several shard-local queues (src/par) dispatches each actor's events
 * in exactly the order the single serial queue would -- the basis of
 * the serial/parallel bit-equivalence guarantee.  Events scheduled
 * through the legacy unkeyed API fall into actor 0 / channel 0 and
 * keep their classic FIFO-among-ties behaviour.
 */

#ifndef TRANSPUTER_SIM_EVENT_QUEUE_HH
#define TRANSPUTER_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace transputer::sim
{

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = uint64_t;

/** No-event sentinel. */
constexpr EventId invalidEventId = 0;

/**
 * Deterministic dispatch key for simultaneous events.
 *
 * Same-tick events fire in (actor, channel, seq) order.  Channels are
 * structural: a given (actor, channel) pair always names the same
 * event source, so the order of two simultaneous events never depends
 * on scheduling history.
 */
struct EventKey
{
    uint32_t actor = 0;   ///< component the event acts upon (0: none)
    uint32_t channel = 0; ///< structural source within the actor
    uint64_t seq = 0;     ///< FIFO sequence within (actor, channel)
};

/** @name Channel numbering convention (shared by core/link/net) */
///@{
constexpr uint32_t chanStep = 0;  ///< CPU instruction-batch events
constexpr uint32_t chanTimer = 1; ///< timer expiry events
constexpr uint32_t chanSelf = 2;  ///< actor-internal (peripherals)
constexpr uint32_t chanFault = 3; ///< fault-plan events (src/fault)
constexpr uint32_t chanLine = 8;  ///< + line id: wire deliveries
///@}

class EventQueue;

/**
 * A preallocated, reusable event: the allocation-free fast path for
 * high-frequency periodic events (the CPU-step channel).
 *
 * The object is the slab: it lives inside its owner (one per
 * transputer), carries a plain function pointer + context instead of
 * a std::function, and is tracked by an intrusive list in the queue
 * instead of the heap-allocating live-event map.  Arming it
 * (EventQueue::scheduleStatic) therefore performs no allocation
 * beyond the amortized heap-vector push.
 *
 * At most one arming may be outstanding; the owner re-arms it from
 * inside the fire callback (or later).  Migration between queues
 * (EventQueue::extractPending, src/par) wraps it into an ordinary
 * closure event, preserving its dispatch key and id.
 */
class StaticEvent
{
  public:
    using FireFn = void (*)(void *);

    StaticEvent(FireFn fire, void *ctx) : fire_(fire), ctx_(ctx) {}
    StaticEvent(const StaticEvent &) = delete;
    StaticEvent &operator=(const StaticEvent &) = delete;

    /** True while armed on some queue. */
    bool pending() const { return armed_; }

    /** @name Scheduling introspection (src/snap)
     *  Valid only while pending(): the tick and key of the current
     *  arming, so a checkpoint can re-schedule the event exactly.
     */
    ///@{
    Tick scheduledAt() const { return when_; }
    const EventKey &scheduledKey() const { return key_; }
    ///@}

    /**
     * Dispatch id of the latest arming.  Kept by the ordinary event a
     * migration (EventQueue::extractPending) wraps this one into, so
     * when the owner sees its arming flag set but pending() false the
     * migrated event can still be queried (EventQueue::pendingInfo)
     * and cancelled (EventQueue::cancel) through this id.
     */
    EventId id() const { return id_; }

  private:
    friend class EventQueue;

    FireFn fire_;
    void *ctx_;
    Tick when_ = 0;
    EventKey key_{};
    EventId id_ = invalidEventId;
    bool armed_ = false;
    StaticEvent *prev_ = nullptr;
    StaticEvent *next_ = nullptr;
};

/**
 * A time-ordered queue of callbacks.
 *
 * Cancellation is lazy: cancelled entries stay in the heap and are
 * skipped when popped, which keeps schedule/cancel O(log n) without a
 * decrease-key structure.
 *
 * Event ids are unique across every EventQueue instance in the
 * process, so an event migrated between queues (src/par shard
 * partitioning) keeps a valid cancellation handle.
 */
class EventQueue
{
  public:
    EventQueue() : nextId_(s_idEpoch.fetch_add(1) << idEpochShift) {}

    /** Current simulated time (time of the last dispatched event). */
    Tick now() const { return now_; }

    /**
     * Force the clock forward (no events before t may be pending).
     * Used when handing simulated time between queues (src/par) and
     * by runUntil.
     */
    void
    setNow(Tick t)
    {
        TRANSPUTER_ASSERT(t >= now_, "setNow must move time forward");
        TRANSPUTER_ASSERT(nextTime() >= t,
                          "setNow would skip pending events");
        now_ = t;
    }

    /**
     * The time horizon this queue is allowed to see (maxTick when
     * unbounded).  A conservative parallel run bounds each shard's
     * horizon to the synchronization window; actors that run ahead of
     * dispatched events (the CPU instruction batcher) must not advance
     * past it, because events from other shards may still arrive up to
     * the horizon.
     */
    Tick horizon() const { return horizon_; }
    void setHorizon(Tick h) { horizon_ = h; }

    /** @name Topology-aware per-actor lookahead (net::Network)
     *
     * The co-simulation bounds every CPU's instruction run-ahead at
     * the earliest pending event that could affect it.  The global
     * nextTime() is a correct such bound, but tighter than physics
     * requires: an event acting on *another* node can only influence
     * this one through a link, whose delivery arrives at least the
     * wire's minimum lead after its cause -- the same lookahead
     * argument the shard-parallel engine applies across a cut
     * (src/par), here applied per node inside one queue.  The network
     * registers each actor's group (its node) and the minimum
     * link-lead distance between groups; nextTimeFor(actor) then
     * credits another group's events with the connecting distance
     * while counting the actor's own group's events at face value.
     * Without a registered topology it degrades to nextTime(), the
     * exact legacy bound.
     */
    ///@{
    /**
     * Register the actor->group map (indexed by actor id; -1 or out
     * of range: a global actor whose events reach every group
     * immediately) and the ngroups x ngroups matrix of minimum
     * link-lead distances in ticks (row-major, dist[from][to];
     * dist[g][g] must be 0).
     *
     * step_extra is an additional credit for another group's
     * chanStep events on top of the wire lead: a CPU batch event
     * only executes instructions, and every instruction path from
     * execution to a wire claim charges the architectural clock
     * first (channelOut/channelIn charge cyc::commSuspend before
     * the engine sees the request -- see link::LinkEngine), so a
     * foreign step at T cannot make its first claim before
     * T + step_extra.  Engine, timer, and fault events keep the
     * bare wire lead.
     */
    void
    setTopology(std::vector<int32_t> group_of_actor, int ngroups,
                std::vector<Tick> dist, Tick step_extra = 0)
    {
        TRANSPUTER_ASSERT(dist.size() ==
                              static_cast<size_t>(ngroups) * ngroups,
                          "topology distance matrix size mismatch");
        groupOf_ = std::move(group_of_actor);
        ngroups_ = ngroups;
        dist_ = std::move(dist);
        stepExtra_ = step_extra;
    }

    /** Drop the topology map: nextTimeFor reverts to nextTime(). */
    void
    clearTopology()
    {
        groupOf_.clear();
        dist_.clear();
        ngroups_ = 0;
        stepExtra_ = 0;
    }

    /**
     * Earliest tick at which any pending event could act on the given
     * actor's group.  Never earlier than now(), never later than the
     * earliest pending event of the actor's own group.  Cancelled
     * entries still in the heap are ignored: the bound must be a
     * function of the live event set alone, which a restored snapshot
     * reproduces exactly -- counting dead entries would make batch
     * boundaries (and the step-event seq counters) depend on lazily
     * cancelled garbage a restored run does not have.
     */
    Tick
    nextTimeFor(uint32_t actor)
    {
        skipDead();
        const int32_t me = ngroups_ == 0 ? -1 : groupOf(actor);
        if (me < 0)
            return heap_.empty() ? maxTick : heap_.front().when;
        Tick best = maxTick;
        for (const HeapEntry &e : heap_) {
            Tick t = e.when;
            const int32_t g = groupOf(e.key.actor);
            if (g >= 0 && g != me) {
                Tick d = dist_[static_cast<size_t>(g) * ngroups_ + me];
                if (e.key.channel == chanStep)
                    d += stepExtra_; // see setTopology
                t = d >= maxTick - t ? maxTick : t + d;
            }
            // liveness is checked only when the entry would lower the
            // bound, so the common far-future entries cost no lookup
            if (t >= best)
                continue;
            const bool alive = e.sev
                                   ? (e.sev->armed_ && e.sev->id_ == e.id)
                                   : live_.count(e.id) != 0;
            if (alive)
                best = t;
        }
        return best;
    }
    ///@}

    /** Number of live (non-cancelled) pending events. */
    size_t pending() const { return live_.size() + staticLive_; }

    /** @name Queue statistics (src/obs, Network::dumpMetrics) */
    ///@{
    /** Events dispatched by runOne over this queue's lifetime. */
    uint64_t dispatched() const { return dispatched_; }
    /** Largest live pending-event count ever observed. */
    size_t highWater() const { return highWater_; }

    /** One coherent snapshot of the statistics above, for exporters
     *  that want the numbers as a value (tprof --json, time-series). */
    struct Stats
    {
        Tick now = 0;
        uint64_t dispatched = 0;
        size_t pending = 0;
        size_t highWater = 0;
    };
    Stats
    stats() const
    {
        return Stats{now_, dispatched_, pending(), highWater_};
    }
    ///@}

    /**
     * Arm a StaticEvent at absolute time when (>= now): the
     * allocation-free path used by the CPU-step channel.  The event
     * must not already be pending.
     * @return the dispatch id (for determinism tie-breaks; static
     * events are cancelled via cancelStatic, not this id).
     */
    EventId
    scheduleStatic(Tick when, const EventKey &key, StaticEvent &ev)
    {
        TRANSPUTER_ASSERT(when >= now_,
                          "event scheduled in the past");
        TRANSPUTER_ASSERT(!ev.armed_, "static event already pending");
        const EventId id = ++nextId_;
        ev.when_ = when;
        ev.key_ = key;
        ev.id_ = id;
        ev.armed_ = true;
        linkStatic(ev);
        ++staticLive_;
        pushHeap(HeapEntry{when, key, id, &ev});
        noteHighWater();
        return id;
    }

    /**
     * Disarm a pending StaticEvent (lazy, like cancel()).
     * @return true if it was pending on this queue.
     */
    bool
    cancelStatic(StaticEvent &ev)
    {
        if (!ev.armed_)
            return false;
        unlinkStatic(ev);
        ev.armed_ = false;
        --staticLive_;
        return true;
    }

    /**
     * Schedule fn at absolute time when (>= now) with a deterministic
     * dispatch key.
     * @return a handle usable with cancel().
     */
    EventId
    schedule(Tick when, const EventKey &key, std::function<void()> fn)
    {
        TRANSPUTER_ASSERT(when >= now_,
                          "event scheduled in the past");
        const EventId id = ++nextId_;
        live_.emplace(id, Live{std::move(fn), when, key});
        pushHeap(HeapEntry{when, key, id});
        noteHighWater();
        return id;
    }

    /**
     * Schedule fn at absolute time when (>= now).  Legacy unkeyed
     * form: actor 0, channel 0, FIFO among ties on this queue.
     */
    EventId
    schedule(Tick when, std::function<void()> fn)
    {
        return schedule(when, EventKey{0, 0, ++defaultSeq_},
                        std::move(fn));
    }

    /** Schedule fn delta ticks from now. */
    EventId
    scheduleIn(Tick delta, std::function<void()> fn)
    {
        return schedule(now_ + delta, std::move(fn));
    }

    /**
     * Cancel a previously scheduled event.
     * @return true if the event was still pending.
     */
    bool
    cancel(EventId id)
    {
        return live_.erase(id) != 0;
    }

    /**
     * Look up the tick and key of a live closure event (src/snap):
     * lets a component that only kept the cancellation handle record
     * exactly how its pending event was scheduled.
     * @return false if the id is not live on this queue.
     */
    bool
    pendingInfo(EventId id, Tick &when, EventKey &key) const
    {
        auto it = live_.find(id);
        if (it == live_.end())
            return false;
        when = it->second.when;
        key = it->second.key;
        return true;
    }

    /**
     * Reposition the clock in either direction (src/snap restore).
     * Legal only while the queue holds no live events -- restore first
     * drains the queue (extractPending, discarding the result), resets
     * the clock to the snapshot's tick, then re-schedules every saved
     * event with its exact original (tick, key).  This is the one
     * sanctioned way time may move backwards: onto an empty queue,
     * where no dispatch order can be violated.
     */
    void
    resetTime(Tick t)
    {
        TRANSPUTER_ASSERT(live_.empty() && staticLive_ == 0,
                          "resetTime with events pending");
        heap_.clear();
        now_ = t;
    }

    /** Time of the earliest pending event, or maxTick if none. */
    Tick
    nextTime()
    {
        skipDead();
        return heap_.empty() ? maxTick : heap_.front().when;
    }

    /** True if no live events remain. */
    bool
    empty()
    {
        skipDead();
        return heap_.empty();
    }

    /**
     * Dispatch the earliest pending event.
     * @return true if an event ran, false if the queue was empty.
     */
    bool
    runOne()
    {
        skipDead();
        if (heap_.empty())
            return false;
        const HeapEntry e = heap_.front();
        popHeap();
        TRANSPUTER_ASSERT(e.when >= now_, "time went backwards");
        if (e.sev) {
            StaticEvent &ev = *e.sev;
            unlinkStatic(ev);
            ev.armed_ = false;
            --staticLive_;
            now_ = e.when;
            ++dispatched_;
            ev.fire_(ev.ctx_);
            return true;
        }
        auto it = live_.find(e.id);
        TRANSPUTER_ASSERT(it != live_.end());
        auto fn = std::move(it->second.fn);
        live_.erase(it);
        now_ = e.when;
        ++dispatched_;
        fn();
        return true;
    }

    /**
     * Run events up to and including time limit.
     * @return number of events dispatched.
     */
    uint64_t
    runUntil(Tick limit)
    {
        uint64_t n = 0;
        while (nextTime() <= limit && runOne())
            ++n;
        if (now_ < limit)
            now_ = limit;
        return n;
    }

    /** Run until no events remain (or maxEvents dispatched). */
    uint64_t
    runToQuiescence(uint64_t max_events = UINT64_MAX)
    {
        uint64_t n = 0;
        while (n < max_events && runOne())
            ++n;
        return n;
    }

    /** A pending event in transit between queues (src/par). */
    struct Pending
    {
        Tick when;
        EventKey key;
        EventId id;
        std::function<void()> fn;
    };

    /**
     * Remove and return every live pending event (in no particular
     * order; the keys carry the dispatch order).  The queue is left
     * empty with its clock unchanged.
     */
    std::vector<Pending>
    extractPending()
    {
        std::vector<Pending> out;
        out.reserve(live_.size() + staticLive_);
        for (auto &[id, ev] : live_)
            out.push_back(
                Pending{ev.when, ev.key, id, std::move(ev.fn)});
        // armed static events migrate as ordinary closure events (the
        // wrap allocates, but migration is a per-run event, not a
        // per-step one); they re-arm statically on their new queue
        // the next time their owner schedules them
        while (staticHead_) {
            StaticEvent &ev = *staticHead_;
            unlinkStatic(ev);
            ev.armed_ = false;
            --staticLive_;
            out.push_back(Pending{
                ev.when_, ev.key_, ev.id_,
                [fire = ev.fire_, ctx = ev.ctx_] { fire(ctx); }});
        }
        live_.clear();
        heap_.clear();
        return out;
    }

    /**
     * Insert an event extracted from another queue, preserving its id
     * (so cancellation handles stay valid) and key (so the dispatch
     * order is unchanged).
     */
    void
    insertPending(Pending p)
    {
        TRANSPUTER_ASSERT(p.when >= now_,
                          "migrated event in the past");
        pushHeap(HeapEntry{p.when, p.key, p.id});
        live_.emplace(p.id, Live{std::move(p.fn), p.when, p.key});
        noteHighWater();
    }

  private:
    struct Live
    {
        std::function<void()> fn;
        Tick when;
        EventKey key;
    };

    struct HeapEntry
    {
        Tick when;
        EventKey key;
        EventId id;
        StaticEvent *sev = nullptr; ///< non-null: static fast path

        /** std::priority_queue is a max-heap; order inverted. */
        bool
        operator<(const HeapEntry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (key.actor != o.key.actor)
                return key.actor > o.key.actor;
            if (key.channel != o.key.channel)
                return key.channel > o.key.channel;
            if (key.seq != o.key.seq)
                return key.seq > o.key.seq;
            return id > o.id;
        }
    };

    void
    noteHighWater()
    {
        const size_t n = live_.size() + staticLive_;
        if (n > highWater_)
            highWater_ = n;
    }

    /** @name Binary heap over heap_ (front = earliest pending);
     *  HeapEntry::operator< is inverted, so the std max-heap
     *  algorithms keep the earliest entry at the front.  A plain
     *  vector (rather than std::priority_queue) so nextTimeFor can
     *  scan the pending set. */
    ///@{
    void
    pushHeap(HeapEntry e)
    {
        heap_.push_back(e);
        std::push_heap(heap_.begin(), heap_.end());
    }

    void
    popHeap()
    {
        std::pop_heap(heap_.begin(), heap_.end());
        heap_.pop_back();
    }
    ///@}

    /** Group of an actor, -1 when unmapped (a global actor). */
    int32_t
    groupOf(uint32_t actor) const
    {
        return actor < groupOf_.size() ? groupOf_[actor] : -1;
    }

    /** Drop cancelled entries from the top of the heap. */
    void
    skipDead()
    {
        while (!heap_.empty()) {
            const HeapEntry &t = heap_.front();
            const bool alive =
                t.sev ? (t.sev->armed_ && t.sev->id_ == t.id)
                      : live_.count(t.id) != 0;
            if (alive)
                break;
            popHeap();
        }
    }

    /** @name Intrusive list of armed static events */
    ///@{
    void
    linkStatic(StaticEvent &ev)
    {
        ev.prev_ = nullptr;
        ev.next_ = staticHead_;
        if (staticHead_)
            staticHead_->prev_ = &ev;
        staticHead_ = &ev;
    }

    void
    unlinkStatic(StaticEvent &ev)
    {
        if (ev.prev_)
            ev.prev_->next_ = ev.next_;
        else
            staticHead_ = ev.next_;
        if (ev.next_)
            ev.next_->prev_ = ev.prev_;
        ev.prev_ = ev.next_ = nullptr;
    }
    ///@}

    /** Per-queue id epoch: ids unique across all queues. */
    static constexpr int idEpochShift = 40;
    static inline std::atomic<uint64_t> s_idEpoch{0};

    Tick now_ = 0;
    Tick horizon_ = maxTick;
    uint64_t dispatched_ = 0;
    size_t highWater_ = 0;
    EventId nextId_;
    uint64_t defaultSeq_ = 0;
    std::vector<HeapEntry> heap_;
    std::unordered_map<EventId, Live> live_;
    std::vector<int32_t> groupOf_; ///< actor -> group (topology)
    std::vector<Tick> dist_;       ///< group-to-group min link lead
    Tick stepExtra_ = 0;           ///< extra lead for foreign steps
    int ngroups_ = 0;              ///< 0: no topology registered
    StaticEvent *staticHead_ = nullptr; ///< armed static events
    size_t staticLive_ = 0;
};

} // namespace transputer::sim

#endif // TRANSPUTER_SIM_EVENT_QUEUE_HH
