/**
 * @file
 * The I1 instruction set (paper section 3.2).
 *
 * Every instruction is one byte: a 4-bit function code and a 4-bit
 * data value (Figure 4).  Thirteen function codes are direct
 * functions; pfix/nfix extend operands to any length (section 3.2.7);
 * the sixteenth, opr, interprets its operand as an operation on the
 * evaluation stack (section 3.2.8).  Operation encodings follow the
 * historical T414 numbering so that the most frequent operations fit
 * without a prefix and nothing needs more than one.
 */

#ifndef TRANSPUTER_ISA_OPCODES_HH
#define TRANSPUTER_ISA_OPCODES_HH

#include <cstdint>
#include <optional>
#include <string_view>

namespace transputer::isa
{

/** The sixteen function codes (high nibble of every instruction). */
enum class Fn : uint8_t
{
    J     = 0x0,  ///< jump (relative; descheduling point)
    LDLP  = 0x1,  ///< load local pointer
    PFIX  = 0x2,  ///< prefix
    LDNL  = 0x3,  ///< load non-local
    LDC   = 0x4,  ///< load constant
    LDNLP = 0x5,  ///< load non-local pointer
    NFIX  = 0x6,  ///< negative prefix
    LDL   = 0x7,  ///< load local
    ADC   = 0x8,  ///< add constant (checked)
    CALL  = 0x9,  ///< call
    CJ    = 0xA,  ///< conditional jump
    AJW   = 0xB,  ///< adjust workspace
    EQC   = 0xC,  ///< equals constant
    STL   = 0xD,  ///< store local
    STNL  = 0xE,  ///< store non-local
    OPR   = 0xF,  ///< operate (indirect functions)
};

/** Indirect operations (operand of OPR), T414 numbering. */
enum class Op : uint16_t
{
    REV         = 0x00, ///< reverse top of stack
    LB          = 0x01, ///< load byte
    BSUB        = 0x02, ///< byte subscript
    ENDP        = 0x03, ///< end process (PAR join)
    DIFF        = 0x04, ///< unchecked subtract
    ADD         = 0x05, ///< checked add
    GCALL       = 0x06, ///< general call (swap Areg and Iptr)
    IN          = 0x07, ///< input message
    PROD        = 0x08, ///< unchecked multiply (log-time)
    GT          = 0x09, ///< signed greater-than
    WSUB        = 0x0A, ///< word subscript
    OUT         = 0x0B, ///< output message
    SUB         = 0x0C, ///< checked subtract
    STARTP      = 0x0D, ///< start process
    OUTBYTE     = 0x0E, ///< output single byte
    OUTWORD     = 0x0F, ///< output single word
    SETERR      = 0x10, ///< set error flag
    RESETCH     = 0x12, ///< reset channel
    CSUB0       = 0x13, ///< check subscript from 0
    STOPP       = 0x15, ///< stop process
    LADD        = 0x16, ///< long add (with carry in)
    STLB        = 0x17, ///< store low-priority queue back pointer
    STHF        = 0x18, ///< store high-priority queue front pointer
    NORM        = 0x19, ///< normalise double word
    LDIV        = 0x1A, ///< long divide
    LDPI        = 0x1B, ///< load pointer to instruction
    STLF        = 0x1C, ///< store low-priority queue front pointer
    XDBLE       = 0x1D, ///< extend single to double
    LDPRI       = 0x1E, ///< load current priority
    REM         = 0x1F, ///< checked remainder
    RET         = 0x20, ///< return
    LEND        = 0x21, ///< loop end (descheduling point)
    LDTIMER     = 0x22, ///< load timer (read clock)
    TESTERR     = 0x29, ///< test and clear error flag
    TESTPRANAL  = 0x2A, ///< test processor analysing
    TIN         = 0x2B, ///< timer input (delayed input)
    DIV         = 0x2C, ///< checked divide
    DIST        = 0x2E, ///< disable timer guard
    DISC        = 0x2F, ///< disable channel guard
    DISS        = 0x30, ///< disable skip guard
    LMUL        = 0x31, ///< long multiply
    NOT         = 0x32, ///< bitwise not
    XOR         = 0x33, ///< bitwise xor
    BCNT        = 0x34, ///< byte count (words -> bytes)
    LSHR        = 0x35, ///< long shift right
    LSHL        = 0x36, ///< long shift left
    LSUM        = 0x37, ///< long unsigned sum (carry out)
    LSUB        = 0x38, ///< long subtract (borrow in, checked)
    RUNP        = 0x39, ///< run process (schedule a Wdesc)
    XWORD       = 0x3A, ///< sign-extend part word
    SB          = 0x3B, ///< store byte
    GAJW        = 0x3C, ///< general adjust workspace
    SAVEL       = 0x3D, ///< save low-priority queue registers
    SAVEH       = 0x3E, ///< save high-priority queue registers
    WCNT        = 0x3F, ///< word count (bytes -> words + selector)
    SHR         = 0x40, ///< unsigned shift right
    SHL         = 0x41, ///< shift left
    MINT        = 0x42, ///< load most negative integer
    ALT         = 0x43, ///< alternative start
    ALTWT       = 0x44, ///< alternative wait
    ALTEND      = 0x45, ///< alternative end
    AND         = 0x46, ///< bitwise and
    ENBT        = 0x47, ///< enable timer guard
    ENBC        = 0x48, ///< enable channel guard
    ENBS        = 0x49, ///< enable skip guard
    MOVE        = 0x4A, ///< block move
    OR          = 0x4B, ///< bitwise or
    CSNGL       = 0x4C, ///< check double fits single
    CCNT1       = 0x4D, ///< check count from 1
    TALT        = 0x4E, ///< timer alternative start
    LDIFF       = 0x4F, ///< long unsigned difference (borrow out)
    STHB        = 0x50, ///< store high-priority queue back pointer
    TALTWT      = 0x51, ///< timer alternative wait
    SUM         = 0x52, ///< unchecked add
    MUL         = 0x53, ///< checked multiply
    STTIMER     = 0x54, ///< set timer (start clocks)
    STOPERR     = 0x55, ///< stop process if error set
    CWORD       = 0x56, ///< check value fits part word
    CLRHALTERR  = 0x57, ///< clear halt-on-error flag
    SETHALTERR  = 0x58, ///< set halt-on-error flag
    TESTHALTERR = 0x59, ///< test halt-on-error flag
    DUP         = 0x5A, ///< duplicate top of stack (T800 extension)
};

/** Lower-case mnemonic of a function code ("ldc", "opr", ...). */
std::string_view fnName(Fn fn);

/** Lower-case mnemonic of an operation ("add", "startp", ...). */
std::string_view opName(Op op);

/** Reverse lookup of a direct-function mnemonic. */
std::optional<Fn> fnFromName(std::string_view name);

/** Reverse lookup of an operation mnemonic. */
std::optional<Op> opFromName(std::string_view name);

/** True if the 16-bit value names a defined operation. */
bool opDefined(uint32_t code);

/** Build the instruction byte for a function code and 4-bit data. */
inline uint8_t
instructionByte(Fn fn, uint8_t data4)
{
    return static_cast<uint8_t>((static_cast<uint8_t>(fn) << 4) |
                                (data4 & 0x0F));
}

} // namespace transputer::isa

#endif // TRANSPUTER_ISA_OPCODES_HH
