#include "isa/superop.hh"

namespace transputer::isa::superop
{

namespace
{

/** Inlined-operation kind for a fast, defined operation. */
Kind
opKind(Op op)
{
    switch (op) {
      case Op::ADD:  return Kind::OpAdd;
      case Op::SUB:  return Kind::OpSub;
      case Op::DIFF: return Kind::OpDiff;
      case Op::SUM:  return Kind::OpSum;
      case Op::GT:   return Kind::OpGt;
      case Op::REV:  return Kind::OpRev;
      case Op::WSUB: return Kind::OpWsub;
      case Op::BSUB: return Kind::OpBsub;
      case Op::AND:  return Kind::OpAnd;
      case Op::OR:   return Kind::OpOr;
      case Op::XOR:  return Kind::OpXor;
      case Op::NOT:  return Kind::OpNot;
      case Op::MINT: return Kind::OpMint;
      case Op::DUP:  return Kind::OpDup;
      case Op::LDPI: return Kind::OpLdpi;
      default:       return Kind::OpGeneric;
    }
}

} // namespace

bool
binopFusable(Op op)
{
    switch (op) {
      case Op::ADD:
      case Op::SUM:
      case Op::DIFF:
      case Op::GT:
      case Op::AND:
      case Op::OR:
      case Op::XOR:
        return true;
      default:
        return false;
    }
}

Kind
classify(const Predecoded &d)
{
    if (!d.complete() || !d.fast())
        return Kind::kCount;
    switch (d.fn) {
      case Fn::J:     return Kind::J;
      case Fn::LDLP:  return Kind::Ldlp;
      case Fn::LDNL:  return Kind::Ldnl;
      case Fn::LDC:   return Kind::Ldc;
      case Fn::LDNLP: return Kind::Ldnlp;
      case Fn::LDL:   return Kind::Ldl;
      case Fn::ADC:   return Kind::Adc;
      case Fn::CALL:  return Kind::Call;
      case Fn::CJ:    return Kind::Cj;
      case Fn::AJW:   return Kind::Ajw;
      case Fn::EQC:   return Kind::Eqc;
      case Fn::STL:   return Kind::Stl;
      case Fn::STNL:  return Kind::Stnl;
      case Fn::OPR:
        if (!(d.flags & pflag::kOpDefined))
            return Kind::kCount;
        return opKind(static_cast<Op>(d.operand));
      default:
        return Kind::kCount; // prefixes never end a chain
    }
}

Kind
fuse(const Predecoded *chains, const Kind *solo, size_t i, size_t n,
     bool cj_j_backedge)
{
    const Kind k0 = solo[i];
    const Kind k1 = i + 1 < n ? solo[i + 1] : Kind::kCount;
    const Kind k2 = i + 2 < n ? solo[i + 2] : Kind::kCount;

    // triples first: the longest match wins
    if (k1 == Kind::Adc && k2 == Kind::Stl) {
        if (k0 == Kind::Ldc)
            return Kind::LdcAdcStl;
        if (k0 == Kind::Ldl)
            return Kind::LdlAdcStl;
    }
    if (k0 == Kind::Ldl && k1 == Kind::Ldl && i + 2 < n &&
        chains[i + 2].fn == Fn::OPR &&
        binopFusable(static_cast<Op>(chains[i + 2].operand)))
        return Kind::LdlLdlBinop;

    if (k1 == Kind::Stl) {
        switch (k0) {
          case Kind::Ldc:  return Kind::LdcStl;
          case Kind::Ldlp: return Kind::LdlpStl;
          case Kind::Ldl:  return Kind::LdlStl;
          case Kind::Adc:  return Kind::AdcStl;
          default: break;
        }
    }

    if (k0 == Kind::Cj && k1 == Kind::J && cj_j_backedge)
        return Kind::CjLoop;

    return k0;
}

} // namespace transputer::isa::superop
