#include "isa/disasm.hh"

#include <sstream>

#include "base/format.hh"
#include "isa/encoding.hh"

namespace transputer::isa
{

namespace
{

std::string
renderOperand(const WordShape &shape, Word operand)
{
    const int64_t sv = shape.toSigned(operand);
    if (sv >= -4096 && sv <= 4096)
        return fmt("{}", sv);
    return fmt("#{}", hexWord(operand, shape.bytes * 2));
}

std::string
render(const Decoded &d, Word next_addr, const WordShape &shape)
{
    if (d.isOperation) {
        if (opDefined(d.operand))
            return std::string(opName(static_cast<Op>(d.operand)));
        return fmt("opr {}", renderOperand(shape, d.operand));
    }
    if (d.fn == Fn::J || d.fn == Fn::CJ || d.fn == Fn::CALL) {
        // render relative target as an absolute address too
        const Word target = shape.truncate(next_addr + d.operand);
        return fmt("{} {}  ; -> #{}", fnName(d.fn),
                   renderOperand(shape, d.operand),
                   hexWord(target, shape.bytes * 2));
    }
    return fmt("{} {}", fnName(d.fn), renderOperand(shape, d.operand));
}

} // namespace

std::vector<DisasmLine>
disassemble(const uint8_t *bytes, size_t size, Word base,
            const WordShape &shape)
{
    std::vector<DisasmLine> lines;
    size_t pos = 0;
    while (pos < size) {
        const Decoded d = decode(bytes, size, pos, shape);
        DisasmLine line;
        line.address = shape.truncate(base + pos);
        line.raw.assign(bytes + pos, bytes + pos + d.length);
        if (!d.complete) {
            // the range ends inside a prefix chain
            line.text = "truncated prefix chain";
            lines.push_back(std::move(line));
            break;
        }
        const Word next = shape.truncate(base + pos + d.length);
        line.text = render(d, next, shape);
        lines.push_back(std::move(line));
        pos += d.length;
    }
    return lines;
}

std::string
listing(const std::vector<DisasmLine> &lines)
{
    std::ostringstream os;
    for (const auto &l : lines) {
        os << hexWord(l.address) << "  ";
        std::string raw;
        for (uint8_t b : l.raw)
            raw += hexWord(b, 2) + " ";
        os << raw;
        for (size_t i = raw.size(); i < 16; ++i)
            os << ' ';
        os << ' ' << l.text << '\n';
    }
    return os.str();
}

} // namespace transputer::isa
