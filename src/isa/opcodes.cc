#include "isa/opcodes.hh"

#include <array>
#include <unordered_map>

namespace transputer::isa
{

namespace
{

constexpr std::array<std::string_view, 16> fnNames = {
    "j",   "ldlp", "pfix", "ldnl", "ldc", "ldnlp", "nfix", "ldl",
    "adc", "call", "cj",   "ajw",  "eqc", "stl",   "stnl", "opr",
};

struct OpEntry
{
    Op op;
    std::string_view name;
};

constexpr std::array opTable = {
    OpEntry{Op::REV, "rev"},
    OpEntry{Op::LB, "lb"},
    OpEntry{Op::BSUB, "bsub"},
    OpEntry{Op::ENDP, "endp"},
    OpEntry{Op::DIFF, "diff"},
    OpEntry{Op::ADD, "add"},
    OpEntry{Op::GCALL, "gcall"},
    OpEntry{Op::IN, "in"},
    OpEntry{Op::PROD, "prod"},
    OpEntry{Op::GT, "gt"},
    OpEntry{Op::WSUB, "wsub"},
    OpEntry{Op::OUT, "out"},
    OpEntry{Op::SUB, "sub"},
    OpEntry{Op::STARTP, "startp"},
    OpEntry{Op::OUTBYTE, "outbyte"},
    OpEntry{Op::OUTWORD, "outword"},
    OpEntry{Op::SETERR, "seterr"},
    OpEntry{Op::RESETCH, "resetch"},
    OpEntry{Op::CSUB0, "csub0"},
    OpEntry{Op::STOPP, "stopp"},
    OpEntry{Op::LADD, "ladd"},
    OpEntry{Op::STLB, "stlb"},
    OpEntry{Op::STHF, "sthf"},
    OpEntry{Op::NORM, "norm"},
    OpEntry{Op::LDIV, "ldiv"},
    OpEntry{Op::LDPI, "ldpi"},
    OpEntry{Op::STLF, "stlf"},
    OpEntry{Op::XDBLE, "xdble"},
    OpEntry{Op::LDPRI, "ldpri"},
    OpEntry{Op::REM, "rem"},
    OpEntry{Op::RET, "ret"},
    OpEntry{Op::LEND, "lend"},
    OpEntry{Op::LDTIMER, "ldtimer"},
    OpEntry{Op::TESTERR, "testerr"},
    OpEntry{Op::TESTPRANAL, "testpranal"},
    OpEntry{Op::TIN, "tin"},
    OpEntry{Op::DIV, "div"},
    OpEntry{Op::DIST, "dist"},
    OpEntry{Op::DISC, "disc"},
    OpEntry{Op::DISS, "diss"},
    OpEntry{Op::LMUL, "lmul"},
    OpEntry{Op::NOT, "not"},
    OpEntry{Op::XOR, "xor"},
    OpEntry{Op::BCNT, "bcnt"},
    OpEntry{Op::LSHR, "lshr"},
    OpEntry{Op::LSHL, "lshl"},
    OpEntry{Op::LSUM, "lsum"},
    OpEntry{Op::LSUB, "lsub"},
    OpEntry{Op::RUNP, "runp"},
    OpEntry{Op::XWORD, "xword"},
    OpEntry{Op::SB, "sb"},
    OpEntry{Op::GAJW, "gajw"},
    OpEntry{Op::SAVEL, "savel"},
    OpEntry{Op::SAVEH, "saveh"},
    OpEntry{Op::WCNT, "wcnt"},
    OpEntry{Op::SHR, "shr"},
    OpEntry{Op::SHL, "shl"},
    OpEntry{Op::MINT, "mint"},
    OpEntry{Op::ALT, "alt"},
    OpEntry{Op::ALTWT, "altwt"},
    OpEntry{Op::ALTEND, "altend"},
    OpEntry{Op::AND, "and"},
    OpEntry{Op::ENBT, "enbt"},
    OpEntry{Op::ENBC, "enbc"},
    OpEntry{Op::ENBS, "enbs"},
    OpEntry{Op::MOVE, "move"},
    OpEntry{Op::OR, "or"},
    OpEntry{Op::CSNGL, "csngl"},
    OpEntry{Op::CCNT1, "ccnt1"},
    OpEntry{Op::TALT, "talt"},
    OpEntry{Op::LDIFF, "ldiff"},
    OpEntry{Op::STHB, "sthb"},
    OpEntry{Op::TALTWT, "taltwt"},
    OpEntry{Op::SUM, "sum"},
    OpEntry{Op::MUL, "mul"},
    OpEntry{Op::STTIMER, "sttimer"},
    OpEntry{Op::STOPERR, "stoperr"},
    OpEntry{Op::CWORD, "cword"},
    OpEntry{Op::CLRHALTERR, "clrhalterr"},
    OpEntry{Op::SETHALTERR, "sethalterr"},
    OpEntry{Op::TESTHALTERR, "testhalterr"},
    OpEntry{Op::DUP, "dup"},
};

const std::unordered_map<std::string_view, Fn> &
fnLookup()
{
    static const auto *map = [] {
        auto *m = new std::unordered_map<std::string_view, Fn>;
        for (size_t i = 0; i < fnNames.size(); ++i)
            m->emplace(fnNames[i], static_cast<Fn>(i));
        return m;
    }();
    return *map;
}

const std::unordered_map<std::string_view, Op> &
opLookup()
{
    static const auto *map = [] {
        auto *m = new std::unordered_map<std::string_view, Op>;
        for (const auto &e : opTable)
            m->emplace(e.name, e.op);
        return m;
    }();
    return *map;
}

const std::unordered_map<uint32_t, std::string_view> &
opNames()
{
    static const auto *map = [] {
        auto *m = new std::unordered_map<uint32_t, std::string_view>;
        for (const auto &e : opTable)
            m->emplace(static_cast<uint32_t>(e.op), e.name);
        return m;
    }();
    return *map;
}

} // namespace

std::string_view
fnName(Fn fn)
{
    return fnNames[static_cast<size_t>(fn) & 0xF];
}

std::string_view
opName(Op op)
{
    auto it = opNames().find(static_cast<uint32_t>(op));
    return it == opNames().end() ? std::string_view{"?op?"} : it->second;
}

std::optional<Fn>
fnFromName(std::string_view name)
{
    auto it = fnLookup().find(name);
    if (it == fnLookup().end())
        return std::nullopt;
    return it->second;
}

std::optional<Op>
opFromName(std::string_view name)
{
    auto it = opLookup().find(name);
    if (it == opLookup().end())
        return std::nullopt;
    return it->second;
}

bool
opDefined(uint32_t code)
{
    return opNames().count(code) != 0;
}

} // namespace transputer::isa
