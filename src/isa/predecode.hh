/**
 * @file
 * Instruction predecoding (the decode half of the interpreter's fast
 * path; see DESIGN.md "Interpreter fast path").
 *
 * The paper's I1 encoding re-derives the same information on every
 * dynamic execution of a byte: the prefix chain is folded into Oreg
 * one byte at a time and the final function byte is dispatched twice
 * (function nibble, then operation).  predecode() performs that fold
 * exactly once per static location, producing a small fixed struct --
 * resolved function, accumulated operand, chain length, prefix
 * counts, the base cycle charge and behaviour flags -- which the core
 * caches (core/icache.hh) and replays until the underlying bytes are
 * written.
 *
 * The classification here is deliberately conservative: kFast marks
 * instructions that touch only registers, memory and the CPU's local
 * clock, so a run of them can execute inside one event dispatch
 * without re-reading the event queue (they can neither schedule nor
 * cancel events, raise a preemption, nor start a link transfer).
 */

#ifndef TRANSPUTER_ISA_PREDECODE_HH
#define TRANSPUTER_ISA_PREDECODE_HH

#include <cstdint>
#include <cstddef>

#include "base/types.hh"
#include "isa/opcodes.hh"

namespace transputer::isa
{

/** Behaviour flags of a predecoded instruction. */
namespace pflag
{
/** Complete chain decoded (unset: ran off the supplied bytes). */
constexpr uint8_t kComplete = 1 << 0;
/**
 * Register/memory/clock-local: cannot schedule or cancel an event,
 * wake another process, drive a port, or block.  A run of kFast
 * instructions may execute back-to-back inside one event dispatch.
 */
constexpr uint8_t kFast = 1 << 1;
/** A priority switch may occur mid-instruction (cycles.hh). */
constexpr uint8_t kInterruptible = 1 << 2;
/** The operand of an OPR names a defined operation. */
constexpr uint8_t kOpDefined = 1 << 3;
} // namespace pflag

/**
 * One predecoded instruction: a whole prefix chain plus its final
 * function byte, folded.
 */
struct Predecoded
{
    Word operand = 0;       ///< accumulated operand (word-masked)
    Fn fn = Fn::OPR;        ///< final function (never PFIX/NFIX)
    uint8_t length = 0;     ///< bytes consumed, including prefixes
    uint8_t pfixes = 0;     ///< pfix bytes in the chain
    uint8_t nfixes = 0;     ///< nfix bytes in the chain
    uint8_t flags = 0;      ///< pflag:: bits

    bool complete() const { return flags & pflag::kComplete; }
    bool fast() const { return flags & pflag::kFast; }
    bool isOperation() const { return fn == Fn::OPR; }
};

/** Longest chain predecode() will fold (8 prefixes + final byte). */
constexpr size_t maxChainBytes = 9;

/**
 * Fold one complete instruction starting at bytes[0].  Mirrors the
 * hardware's per-byte Oreg accumulation for the given word shape.
 * If the chain does not finish within n bytes the result has
 * kComplete unset (and must not be cached).
 */
Predecoded predecode(const uint8_t *bytes, size_t n,
                     const WordShape &shape);

/**
 * True if the operation only reads/writes registers, memory and the
 * local clock (see pflag::kFast).  Channel and port operations,
 * process scheduling, timer-queue operations and the interruptible
 * instructions are all excluded.
 */
bool fastOp(Op op);

/** True if the direct function is kFast (all of them are). */
bool fastFn(Fn fn);

} // namespace transputer::isa

#endif // TRANSPUTER_ISA_PREDECODE_HH
