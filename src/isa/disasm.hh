/**
 * @file
 * Disassembler for I1 byte streams.
 *
 * Prefix chains are folded into a single listed instruction with the
 * accumulated operand, the way a programmer reads transputer code;
 * the raw bytes of the chain are shown alongside.
 */

#ifndef TRANSPUTER_ISA_DISASM_HH
#define TRANSPUTER_ISA_DISASM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "isa/opcodes.hh"

namespace transputer::isa
{

/** One disassembled instruction. */
struct DisasmLine
{
    Word address;              ///< address of the first (prefix) byte
    std::vector<uint8_t> raw;  ///< raw bytes incl. prefixes
    std::string text;          ///< e.g. "ldc 0x754" or "opr add"
};

/**
 * Disassemble a byte range.
 * @param base address of bytes[0] (used for the listing and for
 *        rendering jump targets as absolute addresses).
 */
std::vector<DisasmLine> disassemble(const uint8_t *bytes, size_t size,
                                    Word base, const WordShape &shape);

/** Render a full listing, one instruction per line. */
std::string listing(const std::vector<DisasmLine> &lines);

} // namespace transputer::isa

#endif // TRANSPUTER_ISA_DISASM_HH
