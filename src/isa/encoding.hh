/**
 * @file
 * Instruction encoding: operand prefixing (paper section 3.2.7).
 *
 * pfix loads its 4 data bits into the operand register and shifts it
 * up four places; nfix additionally complements it first.  Any signed
 * operand can therefore be built as a chain of prefixes followed by
 * the final instruction byte, independent of the word length.  The
 * encoder here always produces the canonical minimal chain the paper
 * describes (operands -256..255 need at most one prefix byte).
 */

#ifndef TRANSPUTER_ISA_ENCODING_HH
#define TRANSPUTER_ISA_ENCODING_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "isa/opcodes.hh"

namespace transputer::isa
{

/**
 * Append the minimal prefix chain + instruction for fn with the given
 * signed operand to out.
 * @return the number of bytes emitted.
 */
int emit(std::vector<uint8_t> &out, Fn fn, int64_t operand);

/** Append an indirect operation (OPR, prefixing as needed). */
int emitOp(std::vector<uint8_t> &out, Op op);

/** Number of bytes emit() would produce for this operand. */
int encodedLength(int64_t operand);

/** Number of bytes emitOp() would produce. */
int encodedOpLength(Op op);

/**
 * One decoded instruction: the final function byte plus the operand
 * accumulated through any preceding prefixes.
 */
struct Decoded
{
    Fn fn;             ///< function code of the final byte
    Word operand;      ///< full accumulated operand (word-masked)
    int length;        ///< bytes consumed, including prefixes
    bool isOperation;  ///< true if fn == OPR and the operand is an Op
    bool complete;     ///< false: the stream ended inside the chain
};

/**
 * Decode one complete instruction (prefix chain included) starting at
 * position pos of the byte stream.  The operand accumulates into a
 * word of the given shape, mirroring the hardware's operand register.
 * A stream that ends mid-chain yields a result with complete unset
 * (fn is the last prefix seen); decoding never reads past size.
 */
Decoded decode(const uint8_t *bytes, size_t size, size_t pos,
               const WordShape &shape);

} // namespace transputer::isa

#endif // TRANSPUTER_ISA_ENCODING_HH
