#include "isa/encoding.hh"

#include "base/logging.hh"

namespace transputer::isa
{

namespace
{

/**
 * The classic recursive prefixing algorithm: positive residues chain
 * through pfix, negative ones through nfix on the complement.
 */
void
emitPrefixed(std::vector<uint8_t> &out, Fn fn, int64_t e)
{
    if (e >= 0 && e < 16) {
        out.push_back(instructionByte(fn, static_cast<uint8_t>(e)));
    } else if (e >= 16) {
        emitPrefixed(out, Fn::PFIX, e >> 4);
        out.push_back(instructionByte(fn, static_cast<uint8_t>(e & 0xF)));
    } else {
        emitPrefixed(out, Fn::NFIX, (~e) >> 4);
        out.push_back(instructionByte(fn, static_cast<uint8_t>(e & 0xF)));
    }
}

} // namespace

int
emit(std::vector<uint8_t> &out, Fn fn, int64_t operand)
{
    const size_t before = out.size();
    emitPrefixed(out, fn, operand);
    return static_cast<int>(out.size() - before);
}

int
emitOp(std::vector<uint8_t> &out, Op op)
{
    return emit(out, Fn::OPR, static_cast<int64_t>(op));
}

int
encodedLength(int64_t operand)
{
    std::vector<uint8_t> tmp;
    return emit(tmp, Fn::LDC, operand);
}

int
encodedOpLength(Op op)
{
    std::vector<uint8_t> tmp;
    return emitOp(tmp, op);
}

Decoded
decode(const uint8_t *bytes, size_t size, size_t pos,
       const WordShape &shape)
{
    Word oreg = 0;
    const size_t start = pos;
    Fn fn = Fn::PFIX;
    while (pos < size) {
        const uint8_t b = bytes[pos++];
        fn = static_cast<Fn>(b >> 4);
        const Word data = b & 0x0F;
        if (fn == Fn::PFIX) {
            oreg = shape.truncate((oreg | data) << 4);
        } else if (fn == Fn::NFIX) {
            oreg = shape.truncate(~(oreg | data) << 4);
        } else {
            oreg = shape.truncate(oreg | data);
            return Decoded{fn, oreg, static_cast<int>(pos - start),
                           fn == Fn::OPR, true};
        }
    }
    // ran off the stream inside a prefix chain: report how far we got
    return Decoded{fn, oreg, static_cast<int>(pos - start), false,
                   false};
}

} // namespace transputer::isa
