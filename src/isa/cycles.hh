/**
 * @file
 * The instruction timing model (paper section 3.2.1 and tables).
 *
 * The paper's published costs are normative wherever it states them:
 *   ldc/stl/adc/ldlp/add = 1 cycle, ldl/ldnl/stnl = 2 cycles,
 *   prefixes = 1 cycle each, multiply = 7 + wordlength cycles for the
 *   two-byte pfix+mul sequence (so mul itself is 6 + wordlength),
 *   block communication = max(24, 21 + 8n/wordlength) cycles on
 *   average including the scheduling overhead, low-to-high priority
 *   switch bounded by 58 cycles, high-to-low switch 17 cycles.
 * Costs the paper does not state use T414-era figures from the data
 * sheet it cites as [14].
 *
 * The 58-cycle bound is reproduced structurally: the longest
 * non-interruptible instruction is the divide (7 + wordlength = 39
 * cycles on a 32-bit part) and the low-to-high switch itself costs 19
 * cycles; 39 + 19 = 58.  Longer instructions (block move, block
 * input/output) are interruptible, as the paper requires.
 */

#ifndef TRANSPUTER_ISA_CYCLES_HH
#define TRANSPUTER_ISA_CYCLES_HH

#include <cstdint>

#include "base/types.hh"
#include "isa/opcodes.hh"

namespace transputer::isa::cycles
{

/** Cost of a low-to-high priority switch (the interrupt itself). */
constexpr int switchLowToHigh = 19;

/** Cost of returning from high to low priority (paper: 17 cycles). */
constexpr int switchHighToLow = 17;

/** Cost of a same-priority context switch at a descheduling point. */
constexpr int contextSwitch = 2;

/** Cost of a direct function.  cj depends on whether it jumps. */
constexpr int
direct(Fn fn, bool cj_taken = false)
{
    switch (fn) {
      case Fn::J:     return 3;
      case Fn::LDLP:  return 1;
      case Fn::PFIX:  return 1;
      case Fn::LDNL:  return 2;
      case Fn::LDC:   return 1;
      case Fn::LDNLP: return 1;
      case Fn::NFIX:  return 1;
      case Fn::LDL:   return 2;
      case Fn::ADC:   return 1;
      case Fn::CALL:  return 7;
      case Fn::CJ:    return cj_taken ? 4 : 2;
      case Fn::AJW:   return 1;
      case Fn::EQC:   return 2;
      case Fn::STL:   return 1;
      case Fn::STNL:  return 2;
      case Fn::OPR:   return 0; // charged per operation
    }
    return 1;
}

/** Bit position of the most significant set bit (0 for v==0). */
constexpr int
msb(uint64_t v)
{
    int n = 0;
    while (v >>= 1)
        ++n;
    return n;
}

/** mul: paper table gives pfix+mul = 7 + wordlength total. */
constexpr int mul(const WordShape &s) { return 6 + s.bits; }

/** div / rem: the longest atomic instructions (39 on 32-bit). */
constexpr int div(const WordShape &s) { return 7 + s.bits; }
constexpr int rem(const WordShape &s) { return 5 + s.bits; }

/** prod: time proportional to log of the second operand (Areg). */
constexpr int prod(Word areg) { return 4 + (areg ? msb(areg) + 1 : 0); }

/** Long (double-word) arithmetic. */
constexpr int lmul(const WordShape &s) { return 1 + s.bits; }
constexpr int ldiv(const WordShape &s) { return 3 + s.bits; }

/** Shifts: linear in the shift distance. */
constexpr int shift(Word places) { return 2 + static_cast<int>(places); }
constexpr int longShift(Word places)
{
    return 3 + static_cast<int>(places);
}

/** norm: linear in the normalisation distance. */
constexpr int norm(int places) { return 5 + places; }

/**
 * Block move of n bytes: 8 cycles + 2 per word moved.  Interruptible
 * (see isInterruptible).
 */
constexpr int
move(const WordShape &s, Word n)
{
    const int words = static_cast<int>((n + s.bytes - 1) / s.bytes);
    return 8 + 2 * words;
}

/**
 * Channel communication (paper section 3.2.10): a block of n bytes
 * costs on average max(24, 21 + 8n/wordlength) cycles including the
 * scheduling overhead.  We charge the process that completes the
 * rendezvous (and performs the copy) the full formula plus the copy
 * excess, and the process that suspends a flat suspend cost, so the
 * per-process average matches the paper's formula.
 */
constexpr int
commFormula(const WordShape &s, Word n)
{
    const int v = 21 + static_cast<int>(8 * n) / s.bits;
    return v > 24 ? v : 24;
}

/** Cost charged to the side that suspends (first to the rendezvous). */
constexpr int commSuspend = 20;

/** Cost charged to the side that completes (copies + reschedules). */
constexpr int
commComplete(const WordShape &s, Word n)
{
    return 2 * commFormula(s, n) - commSuspend;
}

/** Base cost of an indirect operation (context-free cases). */
constexpr int
op(Op o)
{
    switch (o) {
      case Op::REV:         return 1;
      case Op::LB:          return 5;
      case Op::BSUB:        return 1;
      case Op::ENDP:        return 13;
      case Op::DIFF:        return 1;
      case Op::ADD:         return 1;
      case Op::GCALL:       return 4;
      case Op::GT:          return 2;
      case Op::WSUB:        return 2;
      case Op::SUB:         return 1;
      case Op::STARTP:      return 12;
      case Op::SETERR:      return 1;
      case Op::RESETCH:     return 3;
      case Op::CSUB0:       return 2;
      case Op::STOPP:       return 11;
      case Op::LADD:        return 2;
      case Op::STLB:        return 1;
      case Op::STHF:        return 1;
      case Op::LDPI:        return 2;
      case Op::STLF:        return 1;
      case Op::XDBLE:       return 2;
      case Op::LDPRI:       return 1;
      case Op::RET:         return 5;
      case Op::LDTIMER:     return 2;
      case Op::TESTERR:     return 2;
      case Op::TESTPRANAL:  return 2;
      case Op::DIST:        return 8;
      case Op::DISC:        return 8;
      case Op::DISS:        return 4;
      case Op::NOT:         return 1;
      case Op::XOR:         return 1;
      case Op::BCNT:        return 2;
      case Op::LSUM:        return 3;
      case Op::LSUB:        return 2;
      case Op::RUNP:        return 10;
      case Op::XWORD:       return 4;
      case Op::SB:          return 4;
      case Op::GAJW:        return 2;
      case Op::SAVEL:       return 4;
      case Op::SAVEH:       return 4;
      case Op::WCNT:        return 5;
      case Op::MINT:        return 1;
      case Op::ALT:         return 2;
      case Op::ALTEND:      return 4;
      case Op::AND:         return 1;
      case Op::ENBT:        return 8;
      case Op::ENBC:        return 7;
      case Op::ENBS:        return 3;
      case Op::OR:          return 1;
      case Op::CSNGL:       return 3;
      case Op::CCNT1:       return 3;
      case Op::TALT:        return 4;
      case Op::LDIFF:       return 3;
      case Op::STHB:        return 1;
      case Op::SUM:         return 1;
      case Op::STTIMER:     return 1;
      case Op::STOPERR:     return 2;
      case Op::CWORD:       return 5;
      case Op::CLRHALTERR:  return 1;
      case Op::SETHALTERR:  return 1;
      case Op::TESTHALTERR: return 2;
      case Op::DUP:         return 1;
      // dynamic-cost operations get their base here; the CPU adds the
      // data-dependent part via the helpers above.
      case Op::LEND:        return 5;  // +5 when the loop continues
      case Op::ALTWT:       return 5;  // +12 if it must wait
      case Op::TALTWT:      return 12; // +wait costs
      case Op::TIN:         return 8;  // +22 if it must wait
      case Op::IN:          return 0;  // charged via comm* helpers
      case Op::OUT:         return 0;
      case Op::OUTBYTE:     return 0;
      case Op::OUTWORD:     return 0;
      case Op::NORM:        return 0;
      case Op::MUL:         return 0;
      case Op::DIV:         return 0;
      case Op::REM:         return 0;
      case Op::PROD:        return 0;
      case Op::LMUL:        return 0;
      case Op::LDIV:        return 0;
      case Op::SHL:         return 0;
      case Op::SHR:         return 0;
      case Op::LSHL:        return 0;
      case Op::LSHR:        return 0;
      case Op::MOVE:        return 0;
    }
    return 1;
}

/**
 * True if the operation is implemented so that a priority switch can
 * occur during its execution (paper section 3.2.4: "the instructions
 * which may take a long time to execute have been implemented to
 * allow a switch during execution").
 */
constexpr bool
isInterruptible(Op o)
{
    switch (o) {
      case Op::MOVE:
      case Op::IN:
      case Op::OUT:
      case Op::OUTBYTE:
      case Op::OUTWORD:
      case Op::TALTWT:
        return true;
      default:
        return false;
    }
}

} // namespace transputer::isa::cycles

#endif // TRANSPUTER_ISA_CYCLES_HH
