/**
 * @file
 * Superop IR for the block-compiler execution tier (see DESIGN.md
 * "Block compiler").
 *
 * A superop is the unit the block compiler emits: one predecoded
 * chain bound to a specialized handler (the solo kinds), or a short
 * run of adjacent chains folded into a single handler (the fused
 * kinds).  Classification and fusion are pure functions over
 * isa::Predecoded values, so they are unit-testable without a core
 * and shared by any BlockBackend (threaded today, native later).
 *
 * Fusion rules are strictly peephole over the transputer's canonical
 * stack idioms (the compiler-emitted sequences the paper's examples
 * produce):
 *   - load/store pairs:  {ldc,ldlp,ldl,adc} ; stl
 *   - constant fold:     ldc k ; adc m ; stl x   (store of k+m)
 *   - memory increment:  ldl x ; adc k ; stl y
 *   - binary operate:    ldl x ; ldl y ; {add,sum,diff,gt,and,or,xor}
 *   - loop back-edge:    cj exit ; j head       (head == block entry)
 * Every rule preserves the per-chain architectural accounting (the
 * executing backend still retires each member chain's counters and
 * cycle charges); fusion only removes dispatch and stack traffic.
 */

#ifndef TRANSPUTER_ISA_SUPEROP_HH
#define TRANSPUTER_ISA_SUPEROP_HH

#include <cstdint>

#include "isa/opcodes.hh"
#include "isa/predecode.hh"

namespace transputer::isa::superop
{

/** Handler kinds.  Order is the backend's dispatch-table order. */
enum class Kind : uint8_t
{
    // solo direct functions (one chain each)
    J = 0,
    Ldlp,
    Ldnl,
    Ldc,
    Ldnlp,
    Ldl,
    Adc,
    Call,
    Cj,
    Ajw,
    Eqc,
    Stl,
    Stnl,
    // inlined fast operations (one chain each)
    OpAdd,
    OpSub,
    OpDiff,
    OpSum,
    OpGt,
    OpRev,
    OpWsub,
    OpBsub,
    OpAnd,
    OpOr,
    OpXor,
    OpNot,
    OpMint,
    OpDup,
    OpLdpi,
    /** Any other fast, defined operation: the backend spills to the
     *  core's generic operation path and reloads. */
    OpGeneric,
    // fused superops (the head step carries these; member steps keep
    // their solo kinds so a backend can always fall back per chain)
    LdcStl,     ///< ldc k ; stl x          (2 chains, stack-neutral)
    LdlpStl,    ///< ldlp k ; stl x         (2 chains, stack-neutral)
    LdlStl,     ///< ldl x ; stl y          (2 chains, stack-neutral)
    AdcStl,     ///< adc k ; stl x          (2 chains)
    LdcAdcStl,  ///< ldc k ; adc m ; stl x  (3 chains, folded constant)
    LdlAdcStl,  ///< ldl x ; adc k ; stl y  (3 chains, stack-neutral)
    LdlLdlBinop,///< ldl x ; ldl y ; binop  (3 chains)
    CjLoop,     ///< cj exit ; j entry      (2 chains, loop back-edge)
    kCount
};

constexpr size_t kKinds = static_cast<size_t>(Kind::kCount);

/** Chains covered by a superop of this kind (1 for solo kinds). */
constexpr int
chainsOf(Kind k)
{
    switch (k) {
      case Kind::LdcStl:
      case Kind::LdlpStl:
      case Kind::LdlStl:
      case Kind::AdcStl:
      case Kind::CjLoop:
        return 2;
      case Kind::LdcAdcStl:
      case Kind::LdlAdcStl:
      case Kind::LdlLdlBinop:
        return 3;
      default:
        return 1;
    }
}

constexpr bool fusedKind(Kind k) { return chainsOf(k) > 1; }

/**
 * The solo kind for one predecoded chain, or Kind::kCount when the
 * chain cannot run inside a superblock at all (non-fast, incomplete,
 * or an undefined operation).
 */
Kind classify(const Predecoded &d);

/** True if the binary operation participates in LdlLdlBinop. */
bool binopFusable(Op op);

/**
 * Fusion decision at position i of a run of predecoded chains.
 * `solo` holds classify() of each chain.  `cj_j_backedge` tells the
 * matcher that chains i and i+1 are a cj followed by a j whose target
 * is the superblock entry (only the caller knows the entry).
 * @return the fused head kind, or solo[i] when nothing matches.
 */
Kind fuse(const Predecoded *chains, const Kind *solo, size_t i,
          size_t n, bool cj_j_backedge);

} // namespace transputer::isa::superop

#endif // TRANSPUTER_ISA_SUPEROP_HH
