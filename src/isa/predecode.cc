#include "isa/predecode.hh"

#include "isa/cycles.hh"

namespace transputer::isa
{

bool
fastOp(Op op)
{
    if (cycles::isInterruptible(op))
        return false;
    switch (op) {
      // channel / port operations (may drive a link engine, which
      // schedules wire events)
      case Op::IN:
      case Op::OUT:
      case Op::OUTBYTE:
      case Op::OUTWORD:
      case Op::RESETCH:
      case Op::ENBC:
      case Op::DISC:
      // process scheduling (may raise a preemption or deschedule into
      // a context the caller wants to observe promptly)
      case Op::ENDP:
      case Op::STARTP:
      case Op::STOPP:
      case Op::RUNP:
      case Op::STOPERR:
      // timer-queue operations (schedule/cancel the expiry event)
      case Op::TIN:
      case Op::ENBT:
      case Op::DIST:
      case Op::STTIMER:
      // ALT control (may deschedule; TALTWT is interruptible anyway)
      case Op::ALT:
      case Op::ALTWT:
      case Op::ALTEND:
      case Op::ENBS:
      case Op::DISS:
      case Op::TALT:
      // scheduler register accesses (kernel-level; keep off the fused
      // path so their interleaving with events is never deferred)
      case Op::STLB:
      case Op::STHF:
      case Op::STLF:
      case Op::STHB:
      case Op::SAVEL:
      case Op::SAVEH:
        return false;
      default:
        return true;
    }
}

bool
fastFn(Fn fn)
{
    // Direct functions touch only registers and memory; j/lend's
    // timeslice rotation deschedules but never schedules an event.
    return fn != Fn::PFIX && fn != Fn::NFIX;
}

Predecoded
predecode(const uint8_t *bytes, size_t n, const WordShape &shape)
{
    Predecoded d;
    Word oreg = 0;
    for (size_t pos = 0; pos < n && pos < maxChainBytes; ++pos) {
        const uint8_t b = bytes[pos];
        const Fn fn = static_cast<Fn>(b >> 4);
        const Word data = b & 0x0F;
        if (fn == Fn::PFIX) {
            oreg = shape.truncate((oreg | data) << 4);
            ++d.pfixes;
        } else if (fn == Fn::NFIX) {
            oreg = shape.truncate(~(oreg | data) << 4);
            ++d.nfixes;
        } else {
            d.fn = fn;
            d.operand = shape.truncate(oreg | data);
            d.length = static_cast<uint8_t>(pos + 1);
            d.flags = pflag::kComplete;
            if (fn == Fn::OPR) {
                if (opDefined(d.operand)) {
                    d.flags |= pflag::kOpDefined;
                    const Op op = static_cast<Op>(d.operand);
                    if (fastOp(op))
                        d.flags |= pflag::kFast;
                    if (cycles::isInterruptible(op))
                        d.flags |= pflag::kInterruptible;
                }
            } else if (fastFn(fn)) {
                d.flags |= pflag::kFast;
            }
            return d;
        }
    }
    return d; // incomplete: chain longer than the supplied bytes
}

} // namespace transputer::isa
