#include "par/snap_par.hh"

#include <thread>
#include <vector>

#include "par/parallel_engine.hh"

namespace transputer::par
{

snap::Snapshot
captureAtBarrier(net::Network &net, const net::RunOptions &opts,
                 const snap::SaveOptions &save)
{
    // The global, cheap part (topology, wires, peripherals, fault
    // streams) on the calling thread; it also sizes `states`.
    snap::Snapshot s = snap::captureShell(net, save);

    const std::vector<int> part =
        computePartition(net.size(), opts);
    int shards = 0;
    for (int p : part)
        shards = std::max(shards, p + 1);

    if (shards <= 1) {
        for (size_t i = 0; i < net.size(); ++i)
            snap::captureNode(net, i, s);
    } else {
        // One thread per shard scans exactly the nodes that shard
        // owns.  Workers only read the network and write disjoint
        // states[i] slots, so no synchronization beyond join().
        std::vector<std::thread> workers;
        workers.reserve(static_cast<size_t>(shards));
        for (int sh = 0; sh < shards; ++sh) {
            workers.emplace_back([&net, &part, &s, sh] {
                for (size_t i = 0; i < part.size(); ++i)
                    if (part[i] == sh)
                        snap::captureNode(net, i, s);
            });
        }
        for (auto &w : workers)
            w.join();
    }

    snap::verifyCaptured(net, s, save);
    return s;
}

} // namespace transputer::par
