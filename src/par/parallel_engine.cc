/**
 * @file
 * The conservative window-round scheduler (see parallel_engine.hh).
 *
 * Round protocol.  Two barriers per round:
 *
 *   barrier A  -- every shard has finished dispatching the previous
 *                 window, so every cross-shard delivery it produced
 *                 is in the destination inbox;
 *   (each shard drains its inbox and publishes its next event time)
 *   barrier B  -- every shard has published;
 *   (every shard independently computes its window end from the
 *    published times, then dispatches its events inside the window)
 *
 * Safety, legacy global window (epochWindows = false).  Every event a
 * shard dispatches in a round has when >= globalNext.  A cross-shard
 * delivery it produces is timed at least Line::minDeliveryLead()
 * after its cause, so it lands at when >= globalNext + lookahead =
 * windowEnd: nothing a shard dispatches inside the window can be
 * affected by a delivery that has not yet been drained.
 *
 * Safety, per-shard epoch windows (the default).  Let d(t, s) be the
 * narrowest lead of the cut lines from shard t to shard s, and D the
 * all-pairs shortest-path closure of d under addition (with
 * D[s][s] = the shortest cycle through s, never zero).  Inboxes drain
 * only at barrier A, so the earliest event shard s can ever receive
 * that is not already in its queue is the head of a causal chain
 * starting from some shard t's next undispatched event: it arrives at
 *
 *   EIT(s) = min over all t of (localNext(t) + D[t][s])
 *
 * -- the t = s term covers responses bounced back by a neighbour
 * (e.g. a link acknowledge claims the reverse wire with no process
 * wakeup in between, so the round trip is d(s,t) + d(t,s) with no
 * slack).  Each shard dispatches strictly below its own EIT; a shard
 * with no incoming cut paths (or whose peers are idle) runs an
 * arbitrarily long epoch per round.  EIT(s) >= globalNext + narrowest
 * lead always, so epoch windows strictly contain the legacy windows
 * and a run never takes more rounds than the legacy mode.
 *
 * Determinism in both modes follows from the (tick, actor, channel,
 * seq) dispatch order, which is the same total order the serial
 * queue uses.
 */

#include "par/parallel_engine.hh"

#include <algorithm>
#include <memory>
#include <thread>
#include <unordered_map>

#include "base/logging.hh"
#include "par/barrier.hh"
#include "par/shard.hh"

namespace transputer::par
{

namespace
{

/** a + b clamped to maxTick (a, b >= 0). */
Tick
satAdd(Tick a, Tick b)
{
    return b >= maxTick - a ? maxTick : a + b;
}

/** Shared round state (written before the spawn / at barriers). */
struct Coord
{
    explicit Coord(int parties) : barrier(parties) {}

    Barrier barrier;
    Tick limit = maxTick;
    Tick limitCap = maxTick;  ///< satAdd(limit, 1): dispatch bound
    Tick lookahead = maxTick; ///< legacy window width (maxTick: uncut)
    bool epoch = true;        ///< per-shard-pair epoch windows
    int nshards = 1;
    /** All-pairs shortest cut-link lead, row-major [from][to]; the
     *  diagonal holds the shortest cycle through the shard (maxTick
     *  where no cut path exists). */
    std::vector<Tick> dist;
};

/**
 * One shard's round loop.  Every worker computes the same global next
 * time from the published per-shard values, so no coordinator thread
 * is needed and all workers exit the loop on the same round.
 */
void
workerLoop(Shard &self, int sidx,
           std::vector<std::unique_ptr<Shard>> &shards, Coord &c,
           uint64_t *rounds, uint64_t *barriers)
{
    std::vector<Tick> next(static_cast<size_t>(c.nshards), maxTick);
    while (true) {
        c.barrier.arriveAndWait(); // A: all deliveries posted
        self.inbox.drainTo(self.queue);
        self.localNext.store(self.queue.nextTime(),
                             std::memory_order_release);
        c.barrier.arriveAndWait(); // B: all next times published
        if (barriers)
            *barriers += 2;
        Tick global_next = maxTick;
        for (int t = 0; t < c.nshards; ++t) {
            next[static_cast<size_t>(t)] =
                shards[static_cast<size_t>(t)]->localNext.load(
                    std::memory_order_acquire);
            global_next =
                std::min(global_next, next[static_cast<size_t>(t)]);
        }
        if (global_next >= c.limitCap)
            return; // quiescent, or nothing left inside the limit
        if (rounds)
            ++*rounds;
        Tick window_end;
        if (c.epoch) {
            // earliest possible not-yet-drained arrival at this shard
            Tick eit = maxTick;
            for (int t = 0; t < c.nshards; ++t)
                eit = std::min(
                    eit,
                    satAdd(next[static_cast<size_t>(t)],
                           c.dist[static_cast<size_t>(t) *
                                      static_cast<size_t>(c.nshards) +
                                  static_cast<size_t>(sidx)]));
            window_end = std::min(eit, c.limitCap);
        } else {
            window_end =
                std::min(satAdd(global_next, c.lookahead), c.limitCap);
        }
        // CPUs may batch instructions ahead of dispatched events, but
        // not into the next window (another shard's delivery may land
        // there) and not past the limit (so the final run-ahead
        // matches the serial run's horizon)
        self.queue.setHorizon(std::min(window_end, c.limit));
        const uint64_t before = self.events;
        while (self.queue.nextTime() < window_end) {
            self.queue.runOne();
            ++self.events;
        }
        if (self.events == before)
            ++self.stalls;
        else
            ++self.epochs;
    }
}

} // namespace

std::vector<int>
computePartition(size_t nodes, const net::RunOptions &opts)
{
    if (opts.partition == net::Partition::Custom) {
        TRANSPUTER_ASSERT(opts.shardOf.size() == nodes,
                          "custom partition must map every node");
        for (int s : opts.shardOf)
            TRANSPUTER_ASSERT(s >= 0 && s < opts.threads,
                              "custom partition shard out of range");
        return opts.shardOf;
    }
    const size_t t = std::clamp<size_t>(
        static_cast<size_t>(std::max(opts.threads, 1)), 1,
        std::max<size_t>(nodes, 1));
    std::vector<int> map(nodes, 0);
    for (size_t i = 0; i < nodes; ++i)
        map[i] = opts.partition == net::Partition::Striped
                     ? static_cast<int>(i % t)
                     : static_cast<int>(i * t / nodes);
    return map;
}

Tick
runParallel(net::Network &net, Tick limit, const net::RunOptions &opts,
            RunStats *stats)
{
    auto &master = net.queue();
    const size_t n = net.size();
    if (opts.predecode)
        for (size_t i = 0; i < n; ++i)
            net.node(i).setPredecodeEnabled(*opts.predecode);
    if (opts.blockCompile)
        for (size_t i = 0; i < n; ++i)
            net.node(i).setBlockCompileEnabled(*opts.blockCompile);
    if (opts.trace)
        for (size_t i = 0; i < n; ++i)
            net.node(i).setTraceEnabled(*opts.trace);
    if (opts.profile)
        for (size_t i = 0; i < n; ++i)
            net.node(i).setProfileEnabled(*opts.profile);
    if (opts.timeseries)
        for (size_t i = 0; i < n; ++i)
            net.node(i).setTimeseriesEnabled(*opts.timeseries);
    if (n == 0)
        return net.run(limit);

    const std::vector<int> shard_of = computePartition(n, opts);
    const int nshards =
        opts.partition == net::Partition::Custom
            ? std::max(opts.threads, 1)
            : *std::max_element(shard_of.begin(), shard_of.end()) + 1;

    if (nshards == 1) {
        // one shard is just the serial simulation: run it on the
        // master queue, where the network's per-actor lookahead
        // topology lets CPUs batch past other nodes' events
        const uint64_t before = master.dispatched();
        const Tick reached = net.run(limit);
        if (stats) {
            stats->rounds = 0;
            stats->barriers = 0;
            stats->lookahead = maxTick;
            stats->epochWindows = false;
            stats->shards = {ShardStats{static_cast<int>(n),
                                        master.dispatched() - before,
                                        0, 0}};
        }
        return reached;
    }

    std::vector<std::unique_ptr<Shard>> shards;
    for (int s = 0; s < nshards; ++s) {
        shards.push_back(std::make_unique<Shard>());
        shards.back()->queue.setNow(master.now());
    }
    for (size_t i = 0; i < n; ++i)
        shards[shard_of[i]]->nodes.push_back(static_cast<int>(i));

    // actor -> shard (actor 0, the legacy unkeyed channel, pins to
    // shard 0: unkeyed events must not touch nodes of other shards)
    std::unordered_map<uint32_t, int> shard_of_actor;
    shard_of_actor[0] = 0;
    for (size_t i = 0; i < n; ++i)
        shard_of_actor[net.node(i).actor()] = shard_of[i];
    for (const auto &er : net.endpoints())
        shard_of_actor[er.ep->actor()] = shard_of[er.homeNode];

    // re-home every node and endpoint onto its shard's queue, and
    // migrate the pending events to the shard of their actor
    for (size_t i = 0; i < n; ++i)
        net.node(i).setQueue(shards[shard_of[i]]->queue);
    for (const auto &er : net.endpoints())
        er.ep->setHomeQueue(shards[shard_of[er.homeNode]]->queue);
    for (auto &p : master.extractPending()) {
        const auto it = shard_of_actor.find(p.key.actor);
        const int s = it == shard_of_actor.end() ? 0 : it->second;
        shards[s]->queue.insertPending(std::move(p));
    }

    // route cut lines into the destination shard's inbox; the
    // narrowest cut line sets the legacy lookahead and the cut leads
    // seed the per-shard-pair distance matrix
    const size_t ns = static_cast<size_t>(nshards);
    std::vector<Tick> dist(ns * ns, maxTick);
    Tick lookahead = maxTick;
    for (const auto &lr : net.lines()) {
        if (shard_of[lr.srcNode] == shard_of[lr.dstNode]) {
            lr.line->setRouter({});
            continue;
        }
        const Tick lead = lr.line->minDeliveryLead();
        lookahead = std::min(lookahead, lead);
        Tick &d = dist[static_cast<size_t>(shard_of[lr.srcNode]) * ns +
                       static_cast<size_t>(shard_of[lr.dstNode])];
        d = std::min(d, lead);
        Inbox *inbox = &shards[shard_of[lr.dstNode]]->inbox;
        lr.line->setRouter([inbox](Tick when, const sim::EventKey &key,
                                   std::function<void()> fn) {
            inbox->push(when, key, std::move(fn));
        });
    }
    TRANSPUTER_ASSERT(lookahead > 0, "cut line with zero lookahead");

    // Floyd-Warshall closure over the shards (nshards is the thread
    // count, so this is tiny).  The diagonal starts at maxTick, not
    // zero, so dist[s][s] converges to the shortest cycle through s:
    // the earliest a shard's own output can bounce back at it.
    for (size_t k = 0; k < ns; ++k)
        for (size_t i = 0; i < ns; ++i) {
            const Tick ik = dist[i * ns + k];
            if (ik == maxTick)
                continue;
            for (size_t j = 0; j < ns; ++j)
                dist[i * ns + j] = std::min(
                    dist[i * ns + j], satAdd(ik, dist[k * ns + j]));
        }

    Coord coord(nshards);
    coord.limit = limit;
    coord.limitCap = satAdd(limit, 1);
    coord.lookahead = lookahead;
    coord.epoch = opts.epochWindows;
    coord.nshards = nshards;
    coord.dist = std::move(dist);

    uint64_t rounds = 0, barriers = 0;
    std::vector<std::thread> workers;
    for (int s = 1; s < nshards; ++s)
        workers.emplace_back([&shards, &coord, s] {
            workerLoop(*shards[s], s, shards, coord, nullptr, nullptr);
        });
    workerLoop(*shards[0], 0, shards, coord, &rounds, &barriers);
    for (auto &w : workers)
        w.join();

    // merge back: any undelivered (post-limit) deliveries first, then
    // every shard's remaining events, then the clock; finally restore
    // the serial wiring
    Tick reached = master.now();
    for (auto &sh : shards) {
        sh->inbox.drainTo(sh->queue);
        reached = std::max(reached, sh->queue.now());
        for (auto &p : sh->queue.extractPending())
            master.insertPending(std::move(p));
    }
    if (limit != maxTick)
        reached = std::max(master.now(), limit);
    master.setNow(reached);

    for (size_t i = 0; i < n; ++i)
        net.node(i).setQueue(master);
    for (const auto &er : net.endpoints())
        er.ep->setHomeQueue(master);
    for (const auto &lr : net.lines())
        lr.line->setRouter({});

    if (stats) {
        stats->rounds = rounds;
        stats->barriers = barriers;
        stats->lookahead = lookahead;
        stats->epochWindows = opts.epochWindows;
        stats->shards.clear();
        for (const auto &sh : shards)
            stats->shards.push_back(ShardStats{
                static_cast<int>(sh->nodes.size()), sh->events,
                sh->inbox.pushes(), sh->stalls, sh->epochs});
    }
    return master.now();
}

} // namespace transputer::par

namespace transputer::net
{

// declared in net/network.hh; lives here so transputer_net does not
// depend on transputer_par (callers of the parallel overload link
// transputer_par explicitly)
Tick
Network::run(Tick limit, const RunOptions &opts)
{
    const Tick reached = par::runParallel(*this, limit, opts);
    // the post-run hook (obs::armFlightDump) also fires inside the
    // serial run() that single-shard configurations delegate to; a
    // second evaluation here is cheap and the dump itself is one-shot
    if (postRun_)
        postRun_(*this);
    return reached;
}

} // namespace transputer::net
