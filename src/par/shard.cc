#include "par/shard.hh"

namespace transputer::par
{

Inbox::~Inbox()
{
    Node *n = head_.exchange(nullptr, std::memory_order_acquire);
    while (n) {
        Node *next = n->next;
        delete n;
        n = next;
    }
}

void
Inbox::push(Tick when, const sim::EventKey &key,
            std::function<void()> fn)
{
    Node *node = new Node{when, key, std::move(fn), nullptr};
    pushes_.fetch_add(1, std::memory_order_relaxed);
    node->next = head_.load(std::memory_order_relaxed);
    while (!head_.compare_exchange_weak(node->next, node,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
        // node->next refreshed by the failed CAS
    }
}

size_t
Inbox::drainTo(sim::EventQueue &q)
{
    Node *n = head_.exchange(nullptr, std::memory_order_acquire);
    size_t count = 0;
    while (n) {
        q.schedule(n->when, n->key, std::move(n->fn));
        Node *next = n->next;
        delete n;
        n = next;
        ++count;
    }
    return count;
}

} // namespace transputer::par
