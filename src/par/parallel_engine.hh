/**
 * @file
 * Conservative parallel discrete-event simulation of a network.
 *
 * The network's nodes are partitioned into shards, one worker thread
 * each, and the simulation advances in barrier-synchronized window
 * rounds.  A link's earliest remote effect trails its local cause by
 * at least Line::minDeliveryLead() (two bit times plus the
 * propagation delay), which bounds how far each shard can dispatch
 * without waiting for the others.  By default each shard gets its own
 * epoch window from the per-shard-pair lookahead bound (the all-pairs
 * shortest cut-link lead between shards, DESIGN.md section 4.8);
 * RunOptions::epochWindows = false falls back to the legacy global
 * window [globalNext, globalNext + narrowest cut lead).  Cross-shard
 * deliveries travel through lock-free inboxes and carry their
 * (tick, actor, channel, seq) dispatch keys, so each shard's queue
 * dispatches exactly the event sequence the single serial queue
 * would: an N-thread run is bit-identical to the serial run.  There
 * is no rollback.
 */

#ifndef TRANSPUTER_PAR_PARALLEL_ENGINE_HH
#define TRANSPUTER_PAR_PARALLEL_ENGINE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "net/network.hh"

namespace transputer::par
{

/** What one parallel run did (per-shard breakdown). */
struct ShardStats
{
    int nodes = 0;            ///< nodes assigned to the shard
    uint64_t events = 0;      ///< events the shard dispatched
    uint64_t inboxPushes = 0; ///< cross-shard events posted to it
    uint64_t stalls = 0;      ///< rounds where it dispatched nothing
    uint64_t epochs = 0;      ///< rounds where it dispatched events
};

struct RunStats
{
    uint64_t rounds = 0;   ///< synchronization windows executed
    uint64_t barriers = 0; ///< barrier crossings (2 per round + exit)
    Tick lookahead = 0;    ///< narrowest cut lead (maxTick: uncut)
    bool epochWindows = false; ///< per-shard-pair windows were used
    std::vector<ShardStats> shards;

    uint64_t
    totalEvents() const
    {
        uint64_t n = 0;
        for (const auto &s : shards)
            n += s.events;
        return n;
    }

    /** Busiest shard's share of events over the mean (1.0: perfectly
     *  balanced; only meaningful when totalEvents() > 0). */
    double
    imbalance() const
    {
        const uint64_t total = totalEvents();
        if (shards.empty() || !total)
            return 1.0;
        uint64_t most = 0;
        for (const auto &s : shards)
            most = std::max<uint64_t>(most, s.events);
        return static_cast<double>(most) * shards.size() /
               static_cast<double>(total);
    }
};

/**
 * The node -> shard map Network::run(limit, opts) will use.  Exposed
 * for tests and benchmarks.  The shard count is opts.threads clamped
 * to the node count (Custom maps are taken as given and validated).
 */
std::vector<int> computePartition(size_t nodes,
                                  const net::RunOptions &opts);

/**
 * Run the network on opts.threads shard worker threads until limit
 * (maxTick: to quiescence).  Bit-identical to net.run(limit).
 * @return the simulated time reached.
 */
Tick runParallel(net::Network &net, Tick limit,
                 const net::RunOptions &opts,
                 RunStats *stats = nullptr);

} // namespace transputer::par

#endif // TRANSPUTER_PAR_PARALLEL_ENGINE_HH
