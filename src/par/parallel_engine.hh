/**
 * @file
 * Conservative parallel discrete-event simulation of a network.
 *
 * The network's nodes are partitioned into shards, one worker thread
 * each, and the simulation advances in barrier-synchronized window
 * rounds.  The window width is the link lookahead: a link's earliest
 * remote effect trails its local cause by at least
 * Line::minDeliveryLead() (two bit times plus the propagation delay),
 * so every shard can dispatch events up to globalNext + lookahead
 * without waiting for the others.  Cross-shard deliveries travel
 * through lock-free inboxes and carry their (tick, actor, channel,
 * seq) dispatch keys, so each shard's queue dispatches exactly the
 * event sequence the single serial queue would: an N-thread run is
 * bit-identical to the serial run.  There is no rollback.
 */

#ifndef TRANSPUTER_PAR_PARALLEL_ENGINE_HH
#define TRANSPUTER_PAR_PARALLEL_ENGINE_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "net/network.hh"

namespace transputer::par
{

/** What one parallel run did (per-shard breakdown). */
struct ShardStats
{
    int nodes = 0;            ///< nodes assigned to the shard
    uint64_t events = 0;      ///< events the shard dispatched
    uint64_t inboxPushes = 0; ///< cross-shard events posted to it
    uint64_t stalls = 0;      ///< rounds where it dispatched nothing
};

struct RunStats
{
    uint64_t rounds = 0;  ///< synchronization windows executed
    Tick lookahead = 0;   ///< window width (maxTick: uncut network)
    std::vector<ShardStats> shards;

    uint64_t
    totalEvents() const
    {
        uint64_t n = 0;
        for (const auto &s : shards)
            n += s.events;
        return n;
    }
};

/**
 * The node -> shard map Network::run(limit, opts) will use.  Exposed
 * for tests and benchmarks.  The shard count is opts.threads clamped
 * to the node count (Custom maps are taken as given and validated).
 */
std::vector<int> computePartition(size_t nodes,
                                  const net::RunOptions &opts);

/**
 * Run the network on opts.threads shard worker threads until limit
 * (maxTick: to quiescence).  Bit-identical to net.run(limit).
 * @return the simulated time reached.
 */
Tick runParallel(net::Network &net, Tick limit,
                 const net::RunOptions &opts,
                 RunStats *stats = nullptr);

} // namespace transputer::par

#endif // TRANSPUTER_PAR_PARALLEL_ENGINE_HH
