/**
 * @file
 * One shard of a partitioned network simulation.
 *
 * A shard owns a slice of the network's nodes, a private event queue
 * for them, and a lock-free inbound queue (Inbox) that other shards
 * post cross-link deliveries into.  The inbox is a Treiber stack:
 * producers push with a CAS, the owning shard drains it with a single
 * exchange at the start of each window round.  Stack (LIFO) order is
 * irrelevant because every delivery carries its (tick, actor,
 * channel, seq) dispatch key -- the event queue restores the order.
 */

#ifndef TRANSPUTER_PAR_SHARD_HH
#define TRANSPUTER_PAR_SHARD_HH

#include <atomic>
#include <functional>
#include <vector>

#include "base/types.hh"
#include "sim/event_queue.hh"

namespace transputer::par
{

/** A lock-free multi-producer single-consumer event mailbox. */
class Inbox
{
  public:
    Inbox() = default;
    Inbox(const Inbox &) = delete;
    Inbox &operator=(const Inbox &) = delete;
    ~Inbox();

    /** Post an event (any thread). */
    void push(Tick when, const sim::EventKey &key,
              std::function<void()> fn);

    /**
     * Move every posted event into the queue (owning thread only;
     * concurrent pushes land in the next drain).
     * @return number of events moved.
     */
    size_t drainTo(sim::EventQueue &q);

    /** Events ever posted (cross-shard traffic statistic). */
    uint64_t
    pushes() const
    {
        return pushes_.load(std::memory_order_relaxed);
    }

  private:
    struct Node
    {
        Tick when;
        sim::EventKey key;
        std::function<void()> fn;
        Node *next;
    };

    std::atomic<Node *> head_{nullptr};
    std::atomic<uint64_t> pushes_{0};
};

/** Per-shard simulation state (one worker thread each). */
struct Shard
{
    sim::EventQueue queue;
    Inbox inbox;
    /** This shard's next event time, published at the round barrier. */
    std::atomic<Tick> localNext{maxTick};
    /** Node indices assigned to this shard. */
    std::vector<int> nodes;
    /** Events dispatched by this shard (statistics). */
    uint64_t events = 0;
    /** Window rounds in which this shard had nothing to dispatch:
     *  barrier overhead paid for no work (horizon stalls). */
    uint64_t stalls = 0;
    /** Window rounds in which this shard dispatched at least one
     *  event (its active epochs). */
    uint64_t epochs = 0;
};

} // namespace transputer::par

#endif // TRANSPUTER_PAR_SHARD_HH
