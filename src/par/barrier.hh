/**
 * @file
 * A reusable synchronization barrier for the shard worker threads.
 *
 * Conservative parallel simulation is barrier-heavy: every window
 * round crosses two barriers, and windows are short when the link
 * lookahead is small.  The barrier therefore spins briefly before
 * falling back to a condition variable -- but only when the machine
 * actually has a core per party, so an oversubscribed run (more
 * shards than cores, the common case in CI containers) degrades to
 * plain blocking instead of burning the quantum of the thread it is
 * waiting for.
 */

#ifndef TRANSPUTER_PAR_BARRIER_HH
#define TRANSPUTER_PAR_BARRIER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace transputer::par
{

/** A sense-reversing (generation-counting) reusable barrier. */
class Barrier
{
  public:
    explicit Barrier(int parties);

    /**
     * Arrive at the barrier and wait for every party.  All memory
     * effects of every party before its arrival are visible to every
     * party after its return (acquire/release on the generation).
     */
    void arriveAndWait();

  private:
    const int parties_;
    const bool spinFirst_;
    std::atomic<int> arrived_{0};
    std::atomic<uint64_t> gen_{0};
    std::mutex mutex_;
    std::condition_variable cv_;
};

} // namespace transputer::par

#endif // TRANSPUTER_PAR_BARRIER_HH
