#include "par/barrier.hh"

#include <thread>

namespace transputer::par
{

namespace
{

/** Spin iterations before blocking (when a core per party exists). */
constexpr int spinLimit = 4096;

} // namespace

Barrier::Barrier(int parties)
    : parties_(parties),
      spinFirst_(std::thread::hardware_concurrency() >=
                 static_cast<unsigned>(parties))
{}

void
Barrier::arriveAndWait()
{
    const uint64_t my_gen = gen_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        parties_) {
        // last arriver: open the next generation.  The reset must be
        // ordered before the generation bump, because a released
        // party may re-arrive immediately.
        arrived_.store(0, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            gen_.store(my_gen + 1, std::memory_order_release);
        }
        cv_.notify_all();
        return;
    }
    if (spinFirst_) {
        for (int i = 0; i < spinLimit; ++i) {
            if (gen_.load(std::memory_order_acquire) != my_gen)
                return;
        }
    }
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] {
        return gen_.load(std::memory_order_acquire) != my_gen;
    });
}

} // namespace transputer::par
