/**
 * @file
 * Shard-parallel snapshot capture (src/snap x src/par).
 *
 * Between runs every pending event lives on the master queue and no
 * worker thread is executing, so capture is a read-only scan -- the
 * expensive part of which is walking each node's memory for dirty
 * pages.  captureAtBarrier() does that scan with one thread per
 * shard, using the same node partition the parallel run itself would,
 * and produces a Snapshot byte-identical to the serial
 * snap::capture() (tests/test_snap.cc asserts the encodings match).
 */

#ifndef TRANSPUTER_PAR_SNAP_PAR_HH
#define TRANSPUTER_PAR_SNAP_PAR_HH

#include "net/network.hh"
#include "snap/snapshot.hh"

namespace transputer::par
{

/**
 * Capture `net` with one worker thread per shard of the partition
 * opts describes.  Must be called between runs (the same barrier at
 * which Network::run(limit, opts) returns): no thread may be mutating
 * the network.
 */
snap::Snapshot captureAtBarrier(net::Network &net,
                                const net::RunOptions &opts,
                                const snap::SaveOptions &save = {});

} // namespace transputer::par

#endif // TRANSPUTER_PAR_SNAP_PAR_HH
