/**
 * @file
 * Error reporting in the gem5 spirit.
 *
 * panic()  - an internal invariant of the simulator is broken (a bug in
 *            this library).  Throws SimPanic.
 * fatal()  - the simulation cannot continue because of a user-level
 *            error (bad program, bad configuration).  Throws SimFatal.
 * warn()   - something dubious but survivable; written to stderr once.
 *
 * Exceptions (not abort()) are used so that a host application
 * embedding the emulator, and the test suite, can recover.
 */

#ifndef TRANSPUTER_BASE_LOGGING_HH
#define TRANSPUTER_BASE_LOGGING_HH

#include <iostream>
#include <stdexcept>
#include <string>

#include "base/format.hh"

namespace transputer
{

/** Thrown by panic(): a simulator-internal invariant was violated. */
class SimPanic : public std::logic_error
{
  public:
    explicit SimPanic(const std::string &what) : std::logic_error(what) {}
};

/** Thrown by fatal(): a user-level error (bad program or config). */
class SimFatal : public std::runtime_error
{
  public:
    explicit SimFatal(const std::string &what) : std::runtime_error(what) {}
};

template <typename... Args>
[[noreturn]] void
panic(std::string_view f, const Args &...args)
{
    throw SimPanic(fmt(f, args...));
}

template <typename... Args>
[[noreturn]] void
fatal(std::string_view f, const Args &...args)
{
    throw SimFatal(fmt(f, args...));
}

template <typename... Args>
void
warn(std::string_view f, const Args &...args)
{
    std::cerr << "warn: " << fmt(f, args...) << "\n";
}

/** panic() unless the given invariant holds. */
#define TRANSPUTER_ASSERT(cond, ...)                                        \
    do {                                                                    \
        if (!(cond))                                                        \
            ::transputer::panic("assertion failed: " #cond " " __VA_ARGS__);\
    } while (0)

} // namespace transputer

#endif // TRANSPUTER_BASE_LOGGING_HH
