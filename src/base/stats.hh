/**
 * @file
 * Tiny statistics accumulators used by the CPU model, the link
 * engines and the benchmark harnesses.
 */

#ifndef TRANSPUTER_BASE_STATS_HH
#define TRANSPUTER_BASE_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace transputer
{

/** Accumulates count / sum / min / max / mean of a sample stream. */
class SampleStat
{
  public:
    void
    add(double v)
    {
        count_ += 1;
        sum_ += v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    void
    reset()
    {
        *this = SampleStat{};
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Collects raw samples so percentiles can be reported. */
class Distribution
{
  public:
    void add(double v) { samples_.push_back(v); }
    size_t count() const { return samples_.size(); }

    double
    percentile(double p)
    {
        if (samples_.empty())
            return 0.0;
        std::sort(samples_.begin(), samples_.end());
        const double rank = p / 100.0 *
            static_cast<double>(samples_.size() - 1);
        const auto lo = static_cast<size_t>(rank);
        const auto hi = std::min(lo + 1, samples_.size() - 1);
        const double frac = rank - static_cast<double>(lo);
        return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
    }

    double max() { return percentile(100.0); }
    double min() { return percentile(0.0); }

    double
    mean() const
    {
        double s = 0.0;
        for (double v : samples_)
            s += v;
        return samples_.empty() ? 0.0
                                : s / static_cast<double>(samples_.size());
    }

  private:
    std::vector<double> samples_;
};

} // namespace transputer

#endif // TRANSPUTER_BASE_STATS_HH
