/**
 * @file
 * Minimal string formatting helpers (GCC 12 lacks std::format).
 *
 * csprintf(fmt, args...) substitutes each "%" occurrence... no: we
 * keep it simpler and safer than printf: fmt uses "{}" placeholders,
 * each replaced by the ostream rendering of the next argument.
 * Unmatched placeholders/arguments are rendered literally/appended,
 * so a malformed call never crashes.
 */

#ifndef TRANSPUTER_BASE_FORMAT_HH
#define TRANSPUTER_BASE_FORMAT_HH

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>
#include <string_view>

namespace transputer
{

namespace format_detail
{

inline void
appendRest(std::ostringstream &os, std::string_view fmt)
{
    os << fmt;
}

template <typename T, typename... Rest>
void
appendRest(std::ostringstream &os, std::string_view fmt, const T &v,
           const Rest &...rest)
{
    const auto pos = fmt.find("{}");
    if (pos == std::string_view::npos) {
        os << fmt << ' ' << v;
        appendRest(os, std::string_view{}, rest...);
        return;
    }
    os << fmt.substr(0, pos) << v;
    appendRest(os, fmt.substr(pos + 2), rest...);
}

} // namespace format_detail

/** Format a string with "{}" placeholders. */
template <typename... Args>
std::string
fmt(std::string_view f, const Args &...args)
{
    std::ostringstream os;
    format_detail::appendRest(os, f, args...);
    return os.str();
}

/** Render a value as a fixed-width hexadecimal string (no 0x). */
inline std::string
hexWord(uint32_t v, int digits = 8)
{
    std::ostringstream os;
    os << std::hex << std::uppercase << std::setfill('0')
       << std::setw(digits) << v;
    return os.str();
}

} // namespace transputer

#endif // TRANSPUTER_BASE_FORMAT_HH
