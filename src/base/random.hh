/**
 * @file
 * Deterministic pseudo-random numbers for workload generators and
 * property tests.  xoshiro-style 64-bit generator; seeded explicitly
 * so every experiment is reproducible.
 */

#ifndef TRANSPUTER_BASE_RANDOM_HH
#define TRANSPUTER_BASE_RANDOM_HH

#include <cstdint>

namespace transputer
{

/** A small, fast, deterministic PRNG (splitmix64-seeded xorshift*). */
class Random
{
  public:
    explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // splitmix64 scramble so that small seeds give good streams
        uint64_t z = seed + 0x9E3779B97F4A7C15ull;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        state_ = z ^ (z >> 31);
        if (state_ == 0)
            state_ = 0x2545F4914F6CDD1Dull;
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545F4914F6CDD1Dull;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability p. */
    bool
    chance(double p)
    {
        return real() < p;
    }

    /** @name Raw generator state (src/snap checkpoint/restore)
     *
     * The whole generator is one 64-bit word, so capturing and
     * restoring it resumes the stream mid-sequence exactly.  setState
     * bypasses the seed scramble: the argument must come from state().
     */
    ///@{
    uint64_t state() const { return state_; }
    void setState(uint64_t s) { state_ = s ? s : 0x2545F4914F6CDD1Dull; }
    ///@}

  private:
    uint64_t state_;
};

} // namespace transputer

#endif // TRANSPUTER_BASE_RANDOM_HH
