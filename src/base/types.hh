/**
 * @file
 * Fundamental scalar types shared by every transputer module.
 *
 * The transputer's memory address space is a signed linear space
 * (paper section 3.2.2): pointers run from the most negative integer,
 * through zero, to the most positive integer.  We carry all machine
 * words as uint32_t and reinterpret as signed where the architecture
 * demands signed comparison.  16-bit parts (T222 class) mask every
 * word to 16 bits; the word-width is a runtime property so that one
 * binary image can be executed on either word length (the paper's
 * word-length-independence property).
 */

#ifndef TRANSPUTER_BASE_TYPES_HH
#define TRANSPUTER_BASE_TYPES_HH

#include <cstdint>

namespace transputer
{

/** A machine word, masked to the part's word width. */
using Word = uint32_t;

/** Signed view of a machine word (after widening/sign extension). */
using SWord = int32_t;

/** Simulated time in ticks; one tick is one nanosecond. */
using Tick = int64_t;

/** Ticks per microsecond. */
constexpr Tick ticksPerUs = 1000;

/** The largest representable tick (no event pending, etc.). */
constexpr Tick maxTick = INT64_MAX;

/**
 * Static description of a word width.  Exactly two instances exist,
 * for the 32-bit (T424/T414 class) and 16-bit (T222 class) parts.
 */
struct WordShape
{
    /** Bits per word: 32 or 16. */
    int bits;
    /** Bytes per word: 4 or 2. */
    int bytes;
    /** log2(bytes): the width of a pointer's byte selector. */
    int byteSelectBits;
    /** All-ones mask for a word. */
    Word mask;
    /** Most negative integer == MostNeg == NotProcess. */
    Word mostNeg;
    /** Most positive integer. */
    Word mostPos;

    /** Mask a raw 32-bit value down to this word width. */
    Word
    truncate(uint64_t v) const
    {
        return static_cast<Word>(v) & mask;
    }

    /** Sign-extend a word of this width into a host int64. */
    int64_t
    toSigned(Word v) const
    {
        const uint64_t m = uint64_t{1} << (bits - 1);
        const uint64_t x = v & mask;
        return static_cast<int64_t>((x ^ m) - m);
    }

    /** True if the word's sign bit is set. */
    bool
    isNeg(Word v) const
    {
        return (v & mostNeg) != 0;
    }

    /** Word-align a pointer (strip the byte selector). */
    Word
    wordAlign(Word p) const
    {
        return p & ~static_cast<Word>(bytes - 1);
    }

    /** Extract a pointer's byte selector. */
    int
    byteSelect(Word p) const
    {
        return static_cast<int>(p & static_cast<Word>(bytes - 1));
    }

    /** Index a word pointer: base + n words (n signed). */
    Word
    index(Word base, int64_t n) const
    {
        return truncate(static_cast<uint64_t>(
            static_cast<int64_t>(base) + n * bytes));
    }
};

/** The 32-bit word shape (T424/T414 class). */
constexpr WordShape word32{32, 4, 2, 0xFFFFFFFFu, 0x80000000u, 0x7FFFFFFFu};

/** The 16-bit word shape (T222 class). */
constexpr WordShape word16{16, 2, 1, 0x0000FFFFu, 0x00008000u, 0x00007FFFu};

} // namespace transputer

#endif // TRANSPUTER_BASE_TYPES_HH
