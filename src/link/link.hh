/**
 * @file
 * The INMOS serial link (paper section 2.3 and Figure 1).
 *
 * A link between two transputers is a pair of one-directional signal
 * lines, each carrying both data and control.  A data byte travels as
 * an 11-bit packet (start bit, a one, eight data bits, stop bit); an
 * acknowledge is a 2-bit packet (start bit, a zero).  After sending a
 * data byte the sender waits for the acknowledge.  The receiver sends
 * the acknowledge as soon as reception of a byte *starts* -- provided
 * a process is waiting for it, or there is room to buffer another
 * byte -- so transmission can be continuous (overlap mode); the
 * non-overlapped variant (ack after the whole byte, as in the very
 * first silicon) is available as an ablation.  A single byte of
 * buffering per input direction gives end-to-end flow control: no
 * information can be lost.
 *
 * The standard rate is 10 Mbit/s: about 0.9 Mbyte/s of data in each
 * direction of each link ("about 1 Mbyte/sec", section 2.3.1).
 *
 * A LinkEndpoint is one end of one link.  LinkEngine is the endpoint
 * attached to a transputer (it implements the CPU's ChannelPort on
 * both directions); peripherals implement their own endpoints.
 */

#ifndef TRANSPUTER_LINK_LINK_HH
#define TRANSPUTER_LINK_LINK_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "core/ports.hh"
#include "core/transputer.hh"
#include "sim/event_queue.hh"

namespace transputer::link
{

/** When the receiver returns the acknowledge packet. */
enum class AckMode
{
    Overlap,   ///< as soon as reception starts (the paper's design)
    EndOfByte, ///< only after the full byte has been received
};

/** Electrical/timing parameters of one link connection. */
struct WireConfig
{
    /** Bits per second; the standard rate is 10 MHz. */
    int64_t bitsPerSecond = 10'000'000;
    /** One-way propagation delay in ticks (line length). */
    Tick propagationDelay = 0;

    Tick
    bitTime() const
    {
        return 1'000'000'000 / bitsPerSecond;
    }
};

class LinkEndpoint;

/**
 * What the fault layer does to one packet about to be transmitted
 * (src/fault).  The default value is a no-op: transmit faithfully.
 */
struct FaultAction
{
    bool drop = false;  ///< occupy the wire, but never deliver
    uint8_t flip = 0;   ///< XOR mask applied to the data bits
    Tick jitter = 0;    ///< extra lead-in before the first bit
};

/**
 * Per-line fault decision source, consulted once per packet at
 * transmit time (implemented by fault::FaultInjector).  Decisions are
 * drawn in transmit order, which the event engine already makes
 * deterministic, so a seeded tap yields bit-identical faulty runs in
 * serial and shard-parallel simulations.
 */
class LineFaultTap
{
  public:
    virtual ~LineFaultTap() = default;
    /** @param at  earliest tick the packet can start on the wire (an
     *  architectural time: max of the caller's clock and the line's
     *  busy horizon, never the batching-dependent queue clock). */
    virtual FaultAction onDataPacket(Tick at, uint8_t byte) = 0;
    virtual FaultAction onAckPacket(Tick at) = 0;
};

/**
 * One one-directional signal line: serializes packets, modelling the
 * multiplexing of data and acknowledge packets (Figure 1).
 *
 * The line is owned by its sending endpoint and is timed against the
 * sender's event queue.  Packet arrival callbacks act on the remote
 * endpoint, so their events are keyed to the remote actor and (when a
 * router is installed by the parallel engine) may be posted into
 * another shard's inbound queue instead of scheduled directly.
 */
class Line
{
  public:
    Line(sim::EventQueue &queue, const WireConfig &cfg)
        : queue_(&queue), cfg_(cfg)
    {}

    void connectTo(LinkEndpoint *remote) { remote_ = remote; }

    /** The endpoint this line delivers to (wiring introspection). */
    LinkEndpoint *remote() const { return remote_; }

    /** Queue a data packet (11 bit times); not before not_before. */
    void transmitData(Tick not_before, uint8_t byte);

    /** Queue an acknowledge packet (2 bit times). */
    void transmitAck(Tick not_before);

    /** @name Line death (src/fault, src/route)
     *
     * A dead line transmits nothing: packets offered to it are counted
     * and discarded, which models the wire of a killed node.  Death is
     * a one-way latch -- a killed chip stays killed.
     */
    ///@{
    void setDead() { dead_ = true; }
    bool lineDead() const { return dead_; }
    /** Packets squelched because the line was dead. */
    uint64_t deadSquelched() const { return deadSquelched_; }

    /**
     * Notify the remote endpoint that this end's host is dead.  The
     * notification rides the normal delivery path (it is an InFlight
     * record with its own key sequence), so it is routed across shards
     * and captured by snapshots exactly like a data packet.  It is
     * delivered after any packet already committed to the wire, and
     * never earlier than minDeliveryLead() from now, preserving the
     * parallel engine's lookahead bound.
     */
    void transmitPeerDeath();
    ///@}

    /** Total ticks the line has spent transmitting. */
    Tick busyTime() const { return busyTime_; }
    uint64_t dataPackets() const { return dataPackets_; }
    uint64_t ackPackets() const { return ackPackets_; }

    /** @name Parallel-simulation plumbing (src/par, net::Network) */
    ///@{
    /** Re-home the line onto the sending shard's queue. */
    void setQueue(sim::EventQueue &q) { queue_ = &q; }

    /** Identity of this line's delivery channel in event keys. */
    void setLineId(uint32_t id) { lineId_ = id; }
    uint32_t lineId() const { return lineId_; }

    /**
     * The minimum lead time between the queue clock when a packet is
     * committed and its earliest remote callback: the receiver can
     * classify a packet only after its second bit has crossed the
     * wire.  This is the conservative lookahead a parallel run gets
     * from cutting a network at this line.
     */
    Tick
    minDeliveryLead() const
    {
        return 2 * cfg_.bitTime() + cfg_.propagationDelay;
    }

    /** Sink for remote deliveries (cross-shard); null: schedule. */
    using Router =
        std::function<void(Tick, const sim::EventKey &,
                           std::function<void()>)>;
    void setRouter(Router r) { route_ = std::move(r); }
    ///@}

    /** One packet on the wire, as in the paper's Figure 1. */
    struct Packet
    {
        bool isData;   ///< data packet (11 bits) or acknowledge (2)
        uint8_t byte;  ///< the data bits (data packets only)
        Tick start;    ///< first bit leaves the sender
        Tick end;      ///< last bit leaves the sender
    };

    /** Observe every packet this line transmits (tracing). */
    std::function<void(const Packet &)> onPacket;

    /** @name Fault injection (src/fault; compile-gated, null = off) */
    ///@{
    void setFaultTap(LineFaultTap *tap) { fault_ = tap; }
    LineFaultTap *faultTap() const { return fault_; }
    uint64_t dataDropped() const { return dataDropped_; }
    uint64_t acksDropped() const { return acksDropped_; }
    uint64_t dataCorrupted() const { return dataCorrupted_; }
    /** Total injected extra lead-in (latency jitter), in ticks. */
    Tick faultJitter() const { return faultJitter_; }
    ///@}

    /** @name Checkpoint/restore (src/snap)
     *
     * Every queued remote callback is mirrored by an InFlight record
     * (kind + payload + exact delivery tick and key sequence), so a
     * snapshot can re-create the undelivered tail of the wire.  The
     * records are pruned only from the sending side (claim, export):
     * delivery callbacks run on the *receiving* endpoint's thread in a
     * shard-parallel run, so they must never touch the list.
     */
    ///@{
    /** Packet-arrival callback kinds, matching LinkEndpoint. */
    static constexpr uint8_t kDataStart = 0;
    static constexpr uint8_t kDataEnd = 1;
    static constexpr uint8_t kAckEnd = 2;
    static constexpr uint8_t kPeerDead = 3;

    /** One undelivered remote callback. */
    struct InFlight
    {
        uint8_t kind = 0;  ///< kDataStart / kDataEnd / kAckEnd
        uint8_t byte = 0;  ///< the data bits (kDataEnd only)
        Tick when = 0;     ///< delivery tick
        uint64_t seq = 0;  ///< key seq on channel chanLine + lineId
    };

    /** Resumable line state. */
    struct LineSnap
    {
        uint64_t seq = 0;
        Tick busyUntil = 0;
        Tick busyTime = 0;
        uint64_t dataPackets = 0;
        uint64_t ackPackets = 0;
        uint64_t dataDropped = 0;
        uint64_t acksDropped = 0;
        uint64_t dataCorrupted = 0;
        Tick faultJitter = 0;
        bool dead = false;
        uint64_t deadSquelched = 0;
        std::vector<InFlight> inFlight;
    };

    /**
     * Capture the line, pruning records already delivered (everything
     * at or before now: the caller snapshots after a runUntil, so any
     * still-pending delivery is strictly in the future).
     */
    LineSnap exportSnap(Tick now);

    /**
     * Restore the line and re-schedule every in-flight callback with
     * its exact original (tick, key).  The queue clock must already
     * be reset to the snapshot tick and the line connected.
     */
    void importSnap(const LineSnap &s);

    const WireConfig &config() const { return cfg_; }
    ///@}

  private:
    Tick claim(Tick not_before, Tick duration);
    void deliver(Tick when, uint8_t kind, uint8_t byte);
    void scheduleDelivery(const InFlight &rec);

    sim::EventQueue *queue_;
    const WireConfig cfg_;
    LinkEndpoint *remote_ = nullptr;
    uint32_t lineId_ = 0;
    uint64_t seq_ = 0; ///< FIFO sequence of this line's deliveries
    Router route_;
    Tick busyUntil_ = 0;
    Tick busyTime_ = 0;
    uint64_t dataPackets_ = 0;
    uint64_t ackPackets_ = 0;
    std::vector<InFlight> inFlight_; ///< undelivered remote callbacks
    LineFaultTap *fault_ = nullptr;
    uint64_t dataDropped_ = 0;
    uint64_t acksDropped_ = 0;
    uint64_t dataCorrupted_ = 0;
    Tick faultJitter_ = 0;
    bool dead_ = false;
    uint64_t deadSquelched_ = 0;
};

/**
 * One end of a link: owns the outgoing line and receives packet
 * events from the remote end's line.
 */
class LinkEndpoint
{
  public:
    LinkEndpoint(sim::EventQueue &queue, const WireConfig &cfg)
        : queue_(&queue), tx_(queue, cfg)
    {}

    virtual ~LinkEndpoint() = default;

    /** Wire two endpoints together (both directions). */
    static void
    join(LinkEndpoint &a, LinkEndpoint &b)
    {
        a.tx_.connectTo(&b);
        b.tx_.connectTo(&a);
    }

    /** @name Packet arrival callbacks (invoked by the remote line) */
    ///@{
    /** Reception of a data byte has started. */
    virtual void onDataStart() {}
    /** A data byte has been fully received. */
    virtual void onDataEnd(uint8_t byte) = 0;
    /** An acknowledge has been received. */
    virtual void onAckEnd() = 0;
    /**
     * The endpoint at the far end of this link is attached to a host
     * that has died (Line::transmitPeerDeath).  Default: ignore, which
     * reproduces the pre-notification behaviour of waiting for
     * per-message watchdog timeouts.
     */
    virtual void onPeerDead() {}
    ///@}

    /**
     * The host this endpoint is attached to has been killed by the
     * fault layer.  Implementations should quiesce both directions:
     * stop transmitting and acknowledging, and mark the outgoing line
     * dead.  Called in the killed node's event context.
     */
    virtual void onHostKilled() { tx_.setDead(); }

    Line &tx() { return tx_; }

    /** The event queue this endpoint currently lives on. */
    sim::EventQueue &queue() { return *queue_; }

    /** Deterministic identity used to order simultaneous events. */
    uint32_t actor() const { return actor_; }
    void setActor(uint32_t id) { actor_ = id; }

    /** Id of the line that delivers *to* this endpoint (set by
     *  net::Network when the line is registered).  Together with a
     *  cumulative byte count it identifies a message end-to-end, which
     *  is how the trace exporter pairs send/receive flow arrows. */
    uint32_t rxLineId() const { return rxLineId_; }
    void setRxLineId(uint32_t id) { rxLineId_ = id; }

    /**
     * Re-home this endpoint (and its outgoing line) onto another
     * event queue (shard-local simulation, src/par).
     */
    void
    setHomeQueue(sim::EventQueue &q)
    {
        queue_ = &q;
        tx_.setQueue(q);
    }

  protected:
    /**
     * Schedule an endpoint-internal event (peripheral latency and the
     * like) with a deterministic key.
     */
    sim::EventId
    schedSelfIn(Tick delta, std::function<void()> fn)
    {
        return queue_->schedule(
            queue_->now() + delta,
            sim::EventKey{actor_, sim::chanSelf, ++selfSeq_},
            std::move(fn));
    }

    sim::EventQueue *queue_;
    uint32_t actor_ = 0;
    uint32_t rxLineId_ = 0;
    uint64_t selfSeq_ = 0;
    Line tx_;
};

/**
 * The transputer-side link engine: services output and input message
 * instructions autonomously (DMA concurrent with the CPU), waking the
 * descheduled process when the whole message has been transferred.
 * One engine serves both directions of one link and is attached as
 * the CPU's output and input port for that link.
 */
class LinkEngine : public LinkEndpoint, public core::ChannelPort
{
  public:
    LinkEngine(core::Transputer &cpu, int link_index,
               const WireConfig &cfg, AckMode ack_mode = AckMode::Overlap);

    /** Connect this engine to the other end and register with the CPU. */
    static void connect(LinkEngine &a, LinkEngine &b);

    /** @name ChannelPort (CPU side) */
    ///@{
    void requestOutput(Word wdesc, Word pointer, Word count) override;
    void requestInput(Word wdesc, Word pointer, Word count) override;
    bool enableInput(Word wdesc) override;
    bool disableInput() override;
    void reset() override;
    ///@}

    /** @name LinkEndpoint (wire side) */
    ///@{
    void onDataStart() override;
    void onDataEnd(uint8_t byte) override;
    void onAckEnd() override;
    /**
     * Prompt death notification from the remote end (satellite of the
     * kill path): abort any transfer blocked on the dead neighbour
     * right now -- counted and traced exactly like a watchdog abort --
     * and quiesce this engine's own line toward the corpse, so both
     * directions of the link fall silent at a deterministic tick
     * instead of timing out message by message.
     */
    void onPeerDead() override;
    /** Kill from the fault layer: engine dead + outgoing line dead. */
    void onHostKilled() override;
    ///@}

    uint64_t bytesSent() const { return bytesSent_; }
    uint64_t bytesReceived() const { return bytesReceived_; }
    int linkIndex() const { return linkIndex_; }
    core::Transputer &cpu() { return cpu_; }

    /** @name Link health (src/fault)
     *
     * A timeout > 0 arms a watchdog while a transfer can stall on the
     * remote end: on the output side whenever a data byte is awaiting
     * its acknowledge, on the input side whenever a message is partly
     * received.  A fired watchdog *abandons* the transfer (hardware
     * never retransmits): the blocked process resumes with a short or
     * unacknowledged message and software -- fault::ReliableChannel --
     * detects the damage by checksum and retries at frame level.  A
     * non-zero timeout also downgrades the protocol-violation asserts
     * that injected faults can legitimately trigger (a stale ack for
     * an abandoned output, a byte overrunning the full buffer) to
     * counted drops.  Zero (the default) keeps the strict hardware
     * model and costs one predictable branch per transfer step.
     */
    ///@{
    void setWatchdog(Tick timeout) { watchdogTimeout_ = timeout; }
    Tick watchdog() const { return watchdogTimeout_; }

    /**
     * Mark the engine dead (permanent node failure, src/fault): it
     * stops transmitting, acknowledging and receiving, so the remote
     * end sees a stuck link and its own watchdog/retry machinery must
     * cope.
     */
    void setDead() { dead_ = true; }
    bool dead() const { return dead_; }

    /** The remote host is known dead (peer-death notification). */
    bool peerDead() const { return peerDead_; }

    uint64_t outAborts() const { return outAborts_; }
    uint64_t inAborts() const { return inAborts_; }
    uint64_t staleAcks() const { return staleAcks_; }
    uint64_t overrunDrops() const { return overrunDrops_; }
    uint64_t deadDrops() const { return deadDrops_; }
    ///@}

    AckMode ackMode() const { return ackMode_; }

    /** @name Checkpoint/restore (src/snap) */
    ///@{
    /** Resumable engine state: both DMA state machines, the one-byte
     *  receive buffer, byte totals, health counters, and the exact
     *  (tick, seq) of any armed watchdog. */
    struct EngineSnap
    {
        bool outActive = false;
        bool awaitingAck = false;
        Word outWdesc = 0, outPtr = 0, outCount = 0, outSent = 0;
        bool inActive = false;
        Word inWdesc = 0, inPtr = 0, inCount = 0, inReceived = 0;
        bool bufferValid = false;
        uint8_t buffer = 0;
        bool ackSentForCurrent = false;
        bool altEnabled = false;
        Word altWdesc = 0;
        uint64_t bytesSent = 0, bytesReceived = 0;
        Tick watchdogTimeout = 0;
        bool dead = false;
        bool peerDead = false;
        uint64_t outAborts = 0, inAborts = 0, staleAcks = 0;
        uint64_t overrunDrops = 0, deadDrops = 0;
        uint64_t selfSeq = 0;
        bool outWdogArmed = false;
        Tick outWdogWhen = 0;
        uint64_t outWdogSeq = 0;
        bool inWdogArmed = false;
        Tick inWdogWhen = 0;
        uint64_t inWdogSeq = 0;
    };

    EngineSnap exportSnap() const;
    /** Re-arms any saved watchdog under its original key; the queue
     *  clock must already be reset to the snapshot tick. */
    void importSnap(const EngineSnap &s);
    ///@}

  private:
    void sendNextByte(Tick not_before);
    bool receiverCanAccept() const;
    void sendAck(Tick not_before);
    void armOutWatchdog(Tick from);
    void armInWatchdog(Tick from);
    void disarmOutWatchdog();
    void disarmInWatchdog();
    void outWatchdogFired();
    void inWatchdogFired();

    /** @name Trace flow ids
     *
     * A message is identified end-to-end by (line id, cumulative byte
     * count on that line).  The sender's count at completion (last ack
     * received) equals the receiver's at its completion (last byte
     * received, or buffered byte consumed): the line is serial and
     * FIFO, so the exporter can pair LinkMsgOut/LinkMsgIn records from
     * two different ring buffers without any shared state.
     */
    ///@{
    uint64_t
    flowOut() const
    {
        return (static_cast<uint64_t>(tx_.lineId()) << 40) | bytesSent_;
    }
    uint64_t
    flowIn() const
    {
        return (static_cast<uint64_t>(rxLineId()) << 40) |
               bytesReceived_;
    }
    ///@}

    core::Transputer &cpu_;
    const int linkIndex_;
    const AckMode ackMode_;

    // output state machine
    bool outActive_ = false;
    bool awaitingAck_ = false;
    Word outWdesc_ = 0;
    Word outPtr_ = 0;
    Word outCount_ = 0;
    Word outSent_ = 0;

    // input state machine
    bool inActive_ = false;
    Word inWdesc_ = 0;
    Word inPtr_ = 0;
    Word inCount_ = 0;
    Word inReceived_ = 0;
    bool bufferValid_ = false;
    uint8_t buffer_ = 0;
    bool ackSentForCurrent_ = false;
    bool altEnabled_ = false;
    Word altWdesc_ = 0;

    uint64_t bytesSent_ = 0;
    uint64_t bytesReceived_ = 0;

    // link health (src/fault); timeout 0 = strict hardware model
    Tick watchdogTimeout_ = 0;
    bool dead_ = false;
    bool peerDead_ = false;
    sim::EventId outWdog_ = sim::invalidEventId;
    sim::EventId inWdog_ = sim::invalidEventId;
    uint64_t outAborts_ = 0;
    uint64_t inAborts_ = 0;
    uint64_t staleAcks_ = 0;
    uint64_t overrunDrops_ = 0;
    uint64_t deadDrops_ = 0;
};

} // namespace transputer::link

#endif // TRANSPUTER_LINK_LINK_HH
