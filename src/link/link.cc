#include "link/link.hh"

#include <algorithm>

namespace transputer::link
{

// ---------------------------------------------------------------------
// Line
// ---------------------------------------------------------------------

Tick
Line::claim(Tick not_before, Tick duration)
{
    // retire in-flight records for callbacks that have certainly run:
    // strictly-before-now only, because a delivery at exactly now may
    // still be undispatched (same-tick events order by key).  This is
    // the sender's thread, the only one allowed to touch the list.
    const Tick fired_before = queue_->now();
    std::erase_if(inFlight_, [fired_before](const InFlight &r) {
        return r.when < fired_before;
    });
    const Tick start = std::max({not_before, queue_->now(), busyUntil_});
    busyUntil_ = start + duration;
    busyTime_ += duration;
    return start;
}

void
Line::scheduleDelivery(const InFlight &rec)
{
    // remote callbacks are keyed to the *receiving* endpoint: per-line
    // deliveries are FIFO (when is monotone in seq because the line is
    // serial), so the key order matches the wire order regardless of
    // which queue the event lands on
    const sim::EventKey key{remote_->actor(), sim::chanLine + lineId_,
                            rec.seq};
    LinkEndpoint *remote = remote_;
    std::function<void()> fn;
    switch (rec.kind) {
    case kDataStart:
        fn = [remote] { remote->onDataStart(); };
        break;
    case kDataEnd:
        fn = [remote, byte = rec.byte] { remote->onDataEnd(byte); };
        break;
    case kPeerDead:
        fn = [remote] { remote->onPeerDead(); };
        break;
    default:
        fn = [remote] { remote->onAckEnd(); };
        break;
    }
    if (route_)
        route_(rec.when, key, std::move(fn));
    else
        queue_->schedule(rec.when, key, std::move(fn));
}

void
Line::deliver(Tick when, uint8_t kind, uint8_t byte)
{
    const InFlight rec{kind, byte, when, ++seq_};
    inFlight_.push_back(rec);
    scheduleDelivery(rec);
}

// ----- checkpoint/restore (src/snap) ---------------------------------

Line::LineSnap
Line::exportSnap(Tick now)
{
    // at a snapshot point (after runUntil) every undispatched delivery
    // is strictly in the future, so at-or-before now has fired
    std::erase_if(inFlight_, [now](const InFlight &r) {
        return r.when <= now;
    });
    LineSnap s;
    s.seq = seq_;
    s.busyUntil = busyUntil_;
    s.busyTime = busyTime_;
    s.dataPackets = dataPackets_;
    s.ackPackets = ackPackets_;
    s.dataDropped = dataDropped_;
    s.acksDropped = acksDropped_;
    s.dataCorrupted = dataCorrupted_;
    s.faultJitter = faultJitter_;
    s.dead = dead_;
    s.deadSquelched = deadSquelched_;
    s.inFlight = inFlight_;
    return s;
}

void
Line::importSnap(const LineSnap &s)
{
    TRANSPUTER_ASSERT(remote_, "restoring an unconnected line");
    seq_ = s.seq;
    busyUntil_ = s.busyUntil;
    busyTime_ = s.busyTime;
    dataPackets_ = s.dataPackets;
    ackPackets_ = s.ackPackets;
    dataDropped_ = s.dataDropped;
    acksDropped_ = s.acksDropped;
    dataCorrupted_ = s.dataCorrupted;
    faultJitter_ = s.faultJitter;
    dead_ = s.dead;
    deadSquelched_ = s.deadSquelched;
    inFlight_ = s.inFlight;
    for (const InFlight &rec : inFlight_)
        scheduleDelivery(rec);
}

void
Line::transmitPeerDeath()
{
    if (!remote_ || dead_)
        return;
    // after anything already committed to the wire, and never closer
    // than the lookahead bound the parallel engine relies on
    const Tick when =
        std::max(queue_->now(), busyUntil_) + minDeliveryLead();
    deliver(when, kPeerDead, 0);
}

void
Line::transmitData(Tick not_before, uint8_t byte)
{
    TRANSPUTER_ASSERT(remote_, "line not connected");
    if (dead_) {
        ++deadSquelched_;
        return;
    }
    FaultAction fa;
#ifdef TRANSPUTER_FAULT
    if (fault_)
        fa = fault_->onDataPacket(std::max(not_before, busyUntil_),
                                  byte);
#endif
    const Tick bit = cfg_.bitTime();
    // jitter is modelled as extra lead-in on the wire: the packet's
    // first bit leaves late, so every delivery is only ever delayed
    // and minDeliveryLead() (the parallel engine's lookahead) holds
    const Tick start =
        claim(not_before, fa.jitter + 11 * bit) + fa.jitter;
    ++dataPackets_;
    faultJitter_ += fa.jitter;
    if (fa.flip) {
        byte ^= fa.flip;
        ++dataCorrupted_;
    }
    if (onPacket)
        onPacket(Packet{true, byte, start, start + 11 * bit});
    if (fa.drop) {
        // the sender still drove the wire; the receiver saw noise
        ++dataDropped_;
        return;
    }
    // the receiver can classify the packet once the second bit (the
    // one following the start bit) has arrived
    deliver(start + 2 * bit + cfg_.propagationDelay, kDataStart, 0);
    deliver(start + 11 * bit + cfg_.propagationDelay, kDataEnd, byte);
}

void
Line::transmitAck(Tick not_before)
{
    TRANSPUTER_ASSERT(remote_, "line not connected");
    if (dead_) {
        ++deadSquelched_;
        return;
    }
    FaultAction fa;
#ifdef TRANSPUTER_FAULT
    if (fault_)
        fa = fault_->onAckPacket(std::max(not_before, busyUntil_));
#endif
    const Tick bit = cfg_.bitTime();
    const Tick start =
        claim(not_before, fa.jitter + 2 * bit) + fa.jitter;
    ++ackPackets_;
    faultJitter_ += fa.jitter;
    if (onPacket)
        onPacket(Packet{false, 0, start, start + 2 * bit});
    if (fa.drop) {
        ++acksDropped_;
        return;
    }
    deliver(start + 2 * bit + cfg_.propagationDelay, kAckEnd, 0);
}

// ---------------------------------------------------------------------
// LinkEngine
// ---------------------------------------------------------------------

LinkEngine::LinkEngine(core::Transputer &cpu, int link_index,
                       const WireConfig &cfg, AckMode ack_mode)
    : LinkEndpoint(cpu.queue(), cfg), cpu_(cpu),
      linkIndex_(link_index), ackMode_(ack_mode)
{
    altWdesc_ = cpu.notProcess();
}

void
LinkEngine::connect(LinkEngine &a, LinkEngine &b)
{
    LinkEndpoint::join(a, b);
    a.cpu_.attachOutputPort(a.linkIndex_, &a);
    a.cpu_.attachInputPort(a.linkIndex_, &a);
    b.cpu_.attachOutputPort(b.linkIndex_, &b);
    b.cpu_.attachInputPort(b.linkIndex_, &b);
}

// ----- CPU side -------------------------------------------------------
//
// Wire claims made from CPU context are stamped with the CPU's
// architectural clock, into which channelOut/channelIn have already
// charged cyc::commSuspend.  EventQueue's foreign-step lead credit
// (net::Network::refreshTopology) relies on no CPU-context claim
// landing earlier than that charge after the step event's dispatch.

void
LinkEngine::requestOutput(Word wdesc, Word pointer, Word count)
{
    TRANSPUTER_ASSERT(!outActive_, "link output already in use");
    if (dead_)
        return; // a dead chip never completes; the process stays put
    if (peerDead_) {
        // the remote host is known dead: abort instantly, exactly as
        // a fired watchdog would, instead of timing out per message
        ++outAborts_;
        cpu_.traceLink(obs::Ev::LinkAbortOut, wdesc, flowOut(),
                       static_cast<uint32_t>(linkIndex_));
        cpu_.completeOutput(wdesc);
        return;
    }
    if (count == 0) {
        cpu_.completeOutput(wdesc);
        return;
    }
    outActive_ = true;
    outWdesc_ = wdesc;
    outPtr_ = pointer;
    outCount_ = count;
    outSent_ = 0;
    if (!awaitingAck_)
        sendNextByte(cpu_.localTime());
}

void
LinkEngine::requestInput(Word wdesc, Word pointer, Word count)
{
    TRANSPUTER_ASSERT(!inActive_, "link input already in use");
    if (dead_)
        return; // a dead chip never completes; the process stays put
    if (count == 0) {
        cpu_.completeInput(wdesc);
        return;
    }
    inActive_ = true;
    inWdesc_ = wdesc;
    inPtr_ = pointer;
    inCount_ = count;
    inReceived_ = 0;
    if (bufferValid_) {
        bufferValid_ = false;
        cpu_.memory().writeByte(inPtr_, buffer_);
        inReceived_ = 1;
        // the freed buffer lets the sender proceed; this runs in CPU
        // context, so the ack is timed by the CPU's architectural
        // clock (identical in serial and shard-parallel runs), not the
        // queue clock (which depends on how execution was batched)
        sendAck(cpu_.localTime());
        if (inReceived_ == inCount_) {
            inActive_ = false;
            cpu_.traceLink(obs::Ev::LinkMsgIn, inWdesc_, flowIn(),
                           static_cast<uint32_t>(linkIndex_));
            cpu_.completeInput(inWdesc_);
            return;
        }
#ifdef TRANSPUTER_FAULT
        armInWatchdog(cpu_.localTime());
#endif
    }
    if (inActive_ && peerDead_) {
        // nothing further can ever arrive: complete the message short
        // now (the frame checksum catches the stale tail), as the in
        // watchdog eventually would
        disarmInWatchdog();
        ++inAborts_;
        cpu_.traceLink(obs::Ev::LinkAbortIn, inWdesc_, flowIn(),
                       static_cast<uint32_t>(linkIndex_));
        inActive_ = false;
        cpu_.completeInput(inWdesc_);
    }
}

bool
LinkEngine::enableInput(Word wdesc)
{
    if (bufferValid_)
        return true;
    altEnabled_ = true;
    altWdesc_ = wdesc;
    return false;
}

bool
LinkEngine::disableInput()
{
    altEnabled_ = false;
    altWdesc_ = cpu_.notProcess();
    return bufferValid_;
}

void
LinkEngine::reset()
{
    outActive_ = false;
    awaitingAck_ = false;
    inActive_ = false;
    bufferValid_ = false;
    ackSentForCurrent_ = false;
    altEnabled_ = false;
#ifdef TRANSPUTER_FAULT
    disarmOutWatchdog();
    disarmInWatchdog();
#endif
}

// ----- wire side ------------------------------------------------------

void
LinkEngine::onDataStart()
{
    if (dead_)
        return; // no acknowledge: the remote end sees a stuck link
    ackSentForCurrent_ = false;
    if (ackMode_ != AckMode::Overlap)
        return;
    // ack as soon as reception starts, if a process is waiting for
    // the byte (paper section 2.3): transmission can be continuous
    if (inActive_) {
        sendAck(queue_->now());
        ackSentForCurrent_ = true;
    }
}

void
LinkEngine::onDataEnd(uint8_t byte)
{
    if (dead_) {
        ++deadDrops_;
        return;
    }
    ++bytesReceived_;
    cpu_.noteLinkByteIn(); // time-series link utilisation (src/obs)
    if (inActive_) {
        cpu_.memory().writeByte(
            cpu_.shape().truncate(inPtr_ + inReceived_), byte);
        ++inReceived_;
        if (!ackSentForCurrent_)
            sendAck(queue_->now());
        ackSentForCurrent_ = false;
        if (inReceived_ == inCount_) {
            inActive_ = false;
#ifdef TRANSPUTER_FAULT
            disarmInWatchdog();
#endif
            cpu_.traceLink(obs::Ev::LinkMsgIn, inWdesc_, flowIn(),
                           static_cast<uint32_t>(linkIndex_));
            cpu_.completeInput(inWdesc_);
            return;
        }
#ifdef TRANSPUTER_FAULT
        armInWatchdog(queue_->now());
#endif
        return;
    }
    // no process: the single-byte buffer takes it; the deferred ack
    // is sent when a process inputs the byte
    if (bufferValid_) {
        // a fault-tolerant link counts the overrun a stale ack can
        // produce and keeps the older byte; strict mode treats it as
        // the protocol violation it would be on perfect wires
        TRANSPUTER_ASSERT(watchdogTimeout_ > 0,
                          "link protocol violation: byte overrun");
        ++overrunDrops_;
        return;
    }
    bufferValid_ = true;
    buffer_ = byte;
    ackSentForCurrent_ = false;
    if (altEnabled_)
        cpu_.altReady(altWdesc_);
}

void
LinkEngine::onAckEnd()
{
    if (dead_)
        return;
    if (!awaitingAck_) {
        // the receiver acknowledged a byte whose output the watchdog
        // has already abandoned: tolerated (counted) on a supervised
        // link, a protocol violation on perfect wires
        TRANSPUTER_ASSERT(watchdogTimeout_ > 0,
                          "link protocol violation: unexpected ack");
        ++staleAcks_;
        return;
    }
    awaitingAck_ = false;
#ifdef TRANSPUTER_FAULT
    disarmOutWatchdog();
#endif
    if (!outActive_)
        return;
    if (outSent_ == outCount_) {
        outActive_ = false;
        cpu_.traceLink(obs::Ev::LinkMsgOut, outWdesc_, flowOut(),
                       static_cast<uint32_t>(linkIndex_));
        cpu_.completeOutput(outWdesc_);
        return;
    }
    sendNextByte(queue_->now());
}

void
LinkEngine::sendNextByte(Tick not_before)
{
    TRANSPUTER_ASSERT(outActive_ && !awaitingAck_);
    const uint8_t byte = cpu_.memory().readByte(
        cpu_.shape().truncate(outPtr_ + outSent_));
    ++outSent_;
    ++bytesSent_;
    cpu_.noteLinkByteOut(); // time-series link utilisation (src/obs)
    awaitingAck_ = true;
    cpu_.traceLink(obs::Ev::LinkByte, byte, flowOut(),
                   static_cast<uint32_t>(linkIndex_));
    tx_.transmitData(not_before, byte);
#ifdef TRANSPUTER_FAULT
    armOutWatchdog(not_before);
#endif
}

// ----- link health (src/fault) ---------------------------------------

void
LinkEngine::onPeerDead()
{
    if (peerDead_)
        return;
    peerDead_ = true;
    // quiesce our direction of the link too: nothing we transmit can
    // ever be consumed, and a silent wire is cheaper to simulate than
    // packets nobody acknowledges
    tx_.setDead();
    if (dead_)
        return;
    if (awaitingAck_ || outActive_) {
        disarmOutWatchdog();
        ++outAborts_;
        cpu_.traceLink(obs::Ev::LinkAbortOut, outWdesc_, flowOut(),
                       static_cast<uint32_t>(linkIndex_));
        awaitingAck_ = false;
        if (outActive_) {
            outActive_ = false;
            cpu_.completeOutput(outWdesc_);
        }
    }
    if (inActive_) {
        disarmInWatchdog();
        ++inAborts_;
        cpu_.traceLink(obs::Ev::LinkAbortIn, inWdesc_, flowIn(),
                       static_cast<uint32_t>(linkIndex_));
        inActive_ = false;
        ackSentForCurrent_ = false;
        cpu_.completeInput(inWdesc_);
    }
}

void
LinkEngine::onHostKilled()
{
    setDead();
    tx_.setDead();
    disarmOutWatchdog();
    disarmInWatchdog();
}

void
LinkEngine::armOutWatchdog(Tick from)
{
    if (watchdogTimeout_ == 0 || dead_)
        return;
    disarmOutWatchdog();
    // `from` is architectural (the CPU clock or a dispatched event's
    // time), so the deadline -- and everything an abort then does --
    // is bit-identical between serial and shard-parallel runs
    outWdog_ = queue_->schedule(
        std::max(queue_->now(), from + watchdogTimeout_),
        sim::EventKey{actor_, sim::chanSelf, ++selfSeq_},
        [this] { outWatchdogFired(); });
}

void
LinkEngine::armInWatchdog(Tick from)
{
    if (watchdogTimeout_ == 0 || dead_)
        return;
    disarmInWatchdog();
    inWdog_ = queue_->schedule(
        std::max(queue_->now(), from + watchdogTimeout_),
        sim::EventKey{actor_, sim::chanSelf, ++selfSeq_},
        [this] { inWatchdogFired(); });
}

void
LinkEngine::disarmOutWatchdog()
{
    if (outWdog_ == sim::invalidEventId)
        return;
    queue_->cancel(outWdog_);
    outWdog_ = sim::invalidEventId;
}

void
LinkEngine::disarmInWatchdog()
{
    if (inWdog_ == sim::invalidEventId)
        return;
    queue_->cancel(inWdog_);
    inWdog_ = sim::invalidEventId;
}

void
LinkEngine::outWatchdogFired()
{
    outWdog_ = sim::invalidEventId;
    if (dead_ || !awaitingAck_)
        return;
    // abandon the transfer; hardware never retransmits.  The process
    // resumes as if the message completed -- only frame-level software
    // (fault::ReliableChannel) can tell the difference, by checksum.
    ++outAborts_;
    cpu_.traceLink(obs::Ev::LinkAbortOut, outWdesc_, flowOut(),
                   static_cast<uint32_t>(linkIndex_));
    awaitingAck_ = false;
    if (!outActive_)
        return;
    outActive_ = false;
    cpu_.completeOutput(outWdesc_);
}

void
LinkEngine::inWatchdogFired()
{
    inWdog_ = sim::invalidEventId;
    if (dead_ || !inActive_)
        return;
    // a partly received message has stalled: complete it short.  The
    // unwritten tail of the process's buffer is stale, which is what
    // the frame checksum exists to catch.
    ++inAborts_;
    cpu_.traceLink(obs::Ev::LinkAbortIn, inWdesc_, flowIn(),
                   static_cast<uint32_t>(linkIndex_));
    inActive_ = false;
    ackSentForCurrent_ = false;
    cpu_.completeInput(inWdesc_);
}

// ----- checkpoint/restore (src/snap) ---------------------------------

LinkEngine::EngineSnap
LinkEngine::exportSnap() const
{
    EngineSnap s;
    s.outActive = outActive_;
    s.awaitingAck = awaitingAck_;
    s.outWdesc = outWdesc_;
    s.outPtr = outPtr_;
    s.outCount = outCount_;
    s.outSent = outSent_;
    s.inActive = inActive_;
    s.inWdesc = inWdesc_;
    s.inPtr = inPtr_;
    s.inCount = inCount_;
    s.inReceived = inReceived_;
    s.bufferValid = bufferValid_;
    s.buffer = buffer_;
    s.ackSentForCurrent = ackSentForCurrent_;
    s.altEnabled = altEnabled_;
    s.altWdesc = altWdesc_;
    s.bytesSent = bytesSent_;
    s.bytesReceived = bytesReceived_;
    s.watchdogTimeout = watchdogTimeout_;
    s.dead = dead_;
    s.peerDead = peerDead_;
    s.outAborts = outAborts_;
    s.inAborts = inAborts_;
    s.staleAcks = staleAcks_;
    s.overrunDrops = overrunDrops_;
    s.deadDrops = deadDrops_;
    s.selfSeq = selfSeq_;
    if (outWdog_ != sim::invalidEventId) {
        sim::EventKey key;
        s.outWdogArmed =
            queue_->pendingInfo(outWdog_, s.outWdogWhen, key);
        s.outWdogSeq = key.seq;
    }
    if (inWdog_ != sim::invalidEventId) {
        sim::EventKey key;
        s.inWdogArmed =
            queue_->pendingInfo(inWdog_, s.inWdogWhen, key);
        s.inWdogSeq = key.seq;
    }
    return s;
}

void
LinkEngine::importSnap(const EngineSnap &s)
{
    disarmOutWatchdog();
    disarmInWatchdog();
    outActive_ = s.outActive;
    awaitingAck_ = s.awaitingAck;
    outWdesc_ = s.outWdesc;
    outPtr_ = s.outPtr;
    outCount_ = s.outCount;
    outSent_ = s.outSent;
    inActive_ = s.inActive;
    inWdesc_ = s.inWdesc;
    inPtr_ = s.inPtr;
    inCount_ = s.inCount;
    inReceived_ = s.inReceived;
    bufferValid_ = s.bufferValid;
    buffer_ = s.buffer;
    ackSentForCurrent_ = s.ackSentForCurrent;
    altEnabled_ = s.altEnabled;
    altWdesc_ = s.altWdesc;
    bytesSent_ = s.bytesSent;
    bytesReceived_ = s.bytesReceived;
    watchdogTimeout_ = s.watchdogTimeout;
    dead_ = s.dead;
    peerDead_ = s.peerDead;
    outAborts_ = s.outAborts;
    inAborts_ = s.inAborts;
    staleAcks_ = s.staleAcks;
    overrunDrops_ = s.overrunDrops;
    deadDrops_ = s.deadDrops;
    selfSeq_ = s.selfSeq;
    if (s.outWdogArmed)
        outWdog_ = queue_->schedule(
            s.outWdogWhen,
            sim::EventKey{actor_, sim::chanSelf, s.outWdogSeq},
            [this] { outWatchdogFired(); });
    if (s.inWdogArmed)
        inWdog_ = queue_->schedule(
            s.inWdogWhen,
            sim::EventKey{actor_, sim::chanSelf, s.inWdogSeq},
            [this] { inWatchdogFired(); });
}

bool
LinkEngine::receiverCanAccept() const
{
    return inActive_ || !bufferValid_;
}

void
LinkEngine::sendAck(Tick not_before)
{
    cpu_.traceLink(obs::Ev::LinkAck, 0, 0,
                   static_cast<uint32_t>(linkIndex_));
    tx_.transmitAck(not_before);
}

} // namespace transputer::link
