#include "link/link.hh"

#include <algorithm>

namespace transputer::link
{

// ---------------------------------------------------------------------
// Line
// ---------------------------------------------------------------------

Tick
Line::claim(Tick not_before, Tick duration)
{
    const Tick start = std::max({not_before, queue_->now(), busyUntil_});
    busyUntil_ = start + duration;
    busyTime_ += duration;
    return start;
}

void
Line::deliver(Tick when, std::function<void()> fn)
{
    // remote callbacks are keyed to the *receiving* endpoint: per-line
    // deliveries are FIFO (when is monotone in seq because the line is
    // serial), so the key order matches the wire order regardless of
    // which queue the event lands on
    const sim::EventKey key{remote_->actor(), sim::chanLine + lineId_,
                            ++seq_};
    if (route_)
        route_(when, key, std::move(fn));
    else
        queue_->schedule(when, key, std::move(fn));
}

void
Line::transmitData(Tick not_before, uint8_t byte)
{
    TRANSPUTER_ASSERT(remote_, "line not connected");
    const Tick bit = cfg_.bitTime();
    const Tick start = claim(not_before, 11 * bit);
    ++dataPackets_;
    if (onPacket)
        onPacket(Packet{true, byte, start, start + 11 * bit});
    LinkEndpoint *remote = remote_;
    // the receiver can classify the packet once the second bit (the
    // one following the start bit) has arrived
    deliver(start + 2 * bit + cfg_.propagationDelay,
            [remote] { remote->onDataStart(); });
    deliver(start + 11 * bit + cfg_.propagationDelay,
            [remote, byte] { remote->onDataEnd(byte); });
}

void
Line::transmitAck(Tick not_before)
{
    TRANSPUTER_ASSERT(remote_, "line not connected");
    const Tick bit = cfg_.bitTime();
    const Tick start = claim(not_before, 2 * bit);
    ++ackPackets_;
    if (onPacket)
        onPacket(Packet{false, 0, start, start + 2 * bit});
    LinkEndpoint *remote = remote_;
    deliver(start + 2 * bit + cfg_.propagationDelay,
            [remote] { remote->onAckEnd(); });
}

// ---------------------------------------------------------------------
// LinkEngine
// ---------------------------------------------------------------------

LinkEngine::LinkEngine(core::Transputer &cpu, int link_index,
                       const WireConfig &cfg, AckMode ack_mode)
    : LinkEndpoint(cpu.queue(), cfg), cpu_(cpu),
      linkIndex_(link_index), ackMode_(ack_mode)
{
    altWdesc_ = cpu.notProcess();
}

void
LinkEngine::connect(LinkEngine &a, LinkEngine &b)
{
    LinkEndpoint::join(a, b);
    a.cpu_.attachOutputPort(a.linkIndex_, &a);
    a.cpu_.attachInputPort(a.linkIndex_, &a);
    b.cpu_.attachOutputPort(b.linkIndex_, &b);
    b.cpu_.attachInputPort(b.linkIndex_, &b);
}

// ----- CPU side -------------------------------------------------------

void
LinkEngine::requestOutput(Word wdesc, Word pointer, Word count)
{
    TRANSPUTER_ASSERT(!outActive_, "link output already in use");
    if (count == 0) {
        cpu_.completeOutput(wdesc);
        return;
    }
    outActive_ = true;
    outWdesc_ = wdesc;
    outPtr_ = pointer;
    outCount_ = count;
    outSent_ = 0;
    if (!awaitingAck_)
        sendNextByte(cpu_.localTime());
}

void
LinkEngine::requestInput(Word wdesc, Word pointer, Word count)
{
    TRANSPUTER_ASSERT(!inActive_, "link input already in use");
    if (count == 0) {
        cpu_.completeInput(wdesc);
        return;
    }
    inActive_ = true;
    inWdesc_ = wdesc;
    inPtr_ = pointer;
    inCount_ = count;
    inReceived_ = 0;
    if (bufferValid_) {
        bufferValid_ = false;
        cpu_.memory().writeByte(inPtr_, buffer_);
        inReceived_ = 1;
        // the freed buffer lets the sender proceed; this runs in CPU
        // context, so the ack is timed by the CPU's architectural
        // clock (identical in serial and shard-parallel runs), not the
        // queue clock (which depends on how execution was batched)
        sendAck(cpu_.localTime());
        if (inReceived_ == inCount_) {
            inActive_ = false;
            cpu_.traceLink(obs::Ev::LinkMsgIn, inWdesc_, flowIn(),
                           static_cast<uint32_t>(linkIndex_));
            cpu_.completeInput(inWdesc_);
        }
    }
}

bool
LinkEngine::enableInput(Word wdesc)
{
    if (bufferValid_)
        return true;
    altEnabled_ = true;
    altWdesc_ = wdesc;
    return false;
}

bool
LinkEngine::disableInput()
{
    altEnabled_ = false;
    altWdesc_ = cpu_.notProcess();
    return bufferValid_;
}

void
LinkEngine::reset()
{
    outActive_ = false;
    awaitingAck_ = false;
    inActive_ = false;
    bufferValid_ = false;
    ackSentForCurrent_ = false;
    altEnabled_ = false;
}

// ----- wire side ------------------------------------------------------

void
LinkEngine::onDataStart()
{
    ackSentForCurrent_ = false;
    if (ackMode_ != AckMode::Overlap)
        return;
    // ack as soon as reception starts, if a process is waiting for
    // the byte (paper section 2.3): transmission can be continuous
    if (inActive_) {
        sendAck(queue_->now());
        ackSentForCurrent_ = true;
    }
}

void
LinkEngine::onDataEnd(uint8_t byte)
{
    ++bytesReceived_;
    if (inActive_) {
        cpu_.memory().writeByte(
            cpu_.shape().truncate(inPtr_ + inReceived_), byte);
        ++inReceived_;
        if (!ackSentForCurrent_)
            sendAck(queue_->now());
        ackSentForCurrent_ = false;
        if (inReceived_ == inCount_) {
            inActive_ = false;
            cpu_.traceLink(obs::Ev::LinkMsgIn, inWdesc_, flowIn(),
                           static_cast<uint32_t>(linkIndex_));
            cpu_.completeInput(inWdesc_);
        }
        return;
    }
    // no process: the single-byte buffer takes it; the deferred ack
    // is sent when a process inputs the byte
    TRANSPUTER_ASSERT(!bufferValid_,
                      "link protocol violation: byte overrun");
    bufferValid_ = true;
    buffer_ = byte;
    ackSentForCurrent_ = false;
    if (altEnabled_)
        cpu_.altReady(altWdesc_);
}

void
LinkEngine::onAckEnd()
{
    TRANSPUTER_ASSERT(awaitingAck_,
                      "link protocol violation: unexpected ack");
    awaitingAck_ = false;
    if (!outActive_)
        return;
    if (outSent_ == outCount_) {
        outActive_ = false;
        cpu_.traceLink(obs::Ev::LinkMsgOut, outWdesc_, flowOut(),
                       static_cast<uint32_t>(linkIndex_));
        cpu_.completeOutput(outWdesc_);
        return;
    }
    sendNextByte(queue_->now());
}

void
LinkEngine::sendNextByte(Tick not_before)
{
    TRANSPUTER_ASSERT(outActive_ && !awaitingAck_);
    const uint8_t byte = cpu_.memory().readByte(
        cpu_.shape().truncate(outPtr_ + outSent_));
    ++outSent_;
    ++bytesSent_;
    awaitingAck_ = true;
    cpu_.traceLink(obs::Ev::LinkByte, byte, flowOut(),
                   static_cast<uint32_t>(linkIndex_));
    tx_.transmitData(not_before, byte);
}

bool
LinkEngine::receiverCanAccept() const
{
    return inActive_ || !bufferValid_;
}

void
LinkEngine::sendAck(Tick not_before)
{
    cpu_.traceLink(obs::Ev::LinkAck, 0, 0,
                   static_cast<uint32_t>(linkIndex_));
    tx_.transmitAck(not_before);
}

} // namespace transputer::link
