/**
 * @file
 * The per-transputer predecoded instruction cache (see DESIGN.md
 * "Interpreter fast path").
 *
 * A direct-mapped array of isa::Predecoded entries keyed by the exact
 * byte address of a chain start.  Validity is generation-based rather
 * than flush-based: mem::Memory bumps a per-64-byte-block write
 * generation on every store (CPU stores, link DMA, boot loads), and
 * each entry records the generations of the blocks holding its first
 * and last byte at decode time.  A hit therefore requires the tag to
 * match *and* both generations to be unchanged, which makes
 * self-modifying code exact without searching the cache on writes:
 * invalidation is O(1) per store and lookups simply re-decode when
 * stale.  Nothing architectural lives here -- dropping any entry (or
 * the whole cache) at any moment is always correct.
 */

#ifndef TRANSPUTER_CORE_ICACHE_HH
#define TRANSPUTER_CORE_ICACHE_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "isa/predecode.hh"
#include "mem/memory.hh"

namespace transputer::core
{

class PredecodeCache
{
  public:
    /** One cached chain; ~24 bytes, see isa::Predecoded. */
    struct Entry
    {
        Word tag = 0;       ///< iptr of the chain start
        Word operand = 0;   ///< folded operand
        uint32_t gidx = 0;  ///< generation slot of the first byte
        uint32_t gidx2 = 0; ///< generation slot of the last byte
        uint32_t gen = 0;   ///< write generation of the first byte
        uint32_t gen2 = 0;  ///< write generation of the last byte
        uint8_t length = 0; ///< bytes, including prefixes; 0: invalid
        uint8_t pfixes = 0;
        uint8_t nfixes = 0;
        uint8_t fn = 0;     ///< final isa::Fn (never PFIX/NFIX)
        uint8_t flags = 0;  ///< isa::pflag:: bits
        bool offChip = false; ///< any byte outside on-chip RAM
    };

    /** Default slot count (the T424-era sweet spot, ~80 KiB). */
    static constexpr size_t kDefaultEntries = 2048;

    /**
     * @param entries direct-mapped slot count, a power of two.  Large
     * networks of mostly-idle nodes use a small cache
     * (core::Config::icacheEntries); the entry array itself is only
     * allocated on the first fill, so a node that never executes
     * costs just the generation array.
     */
    explicit PredecodeCache(mem::Memory &mem,
                            size_t entries = kDefaultEntries)
        : mem_(&mem), nEntries_(entries), mask_(entries - 1),
          gens_(mem.invalBlocks(), 1)
    {
        TRANSPUTER_ASSERT(entries >= 2 &&
                              (entries & (entries - 1)) == 0,
                          "icache entry count must be a power of two");
        mem_->attachWriteGens(gens_.data());
    }

    ~PredecodeCache() { mem_->attachWriteGens(nullptr); }

    PredecodeCache(const PredecodeCache &) = delete;
    PredecodeCache &operator=(const PredecodeCache &) = delete;

    /**
     * The entry for the chain starting at iptr, decoding on a miss.
     * @return nullptr when the chain is not cacheable (it runs past
     * populated memory or exceeds isa::maxChainBytes): the caller
     * must fall back to byte-at-a-time execution.
     */
    const Entry *
    lookup(Word iptr)
    {
        if (entries_.empty()) [[unlikely]]
            entries_.resize(nEntries_);
        // hot: the per-instruction hit check is two direct loads into
        // the generation array (the slots were resolved at fill time)
        Entry &e = entries_[indexOf(iptr)];
        if (e.length && e.tag == iptr && gens_[e.gidx] == e.gen &&
            gens_[e.gidx2] == e.gen2) {
            ++hits_;
            return &e;
        }
        return fill(iptr);
    }

    /** @name Statistics (bench_interp, src/obs) */
    ///@{
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    /** Host bytes of the side structures (scale accounting). */
    size_t
    footprintBytes() const
    {
        return entries_.capacity() * sizeof(Entry) +
               gens_.capacity() * sizeof(uint32_t);
    }
    /** Refills of an entry whose tag matched but whose generations
     *  were stale: a store landed in the cached chain's blocks
     *  (self-modifying code, link DMA, boot loads). */
    uint64_t invalidations() const { return invalidations_; }
    ///@}

    /** @name Restore hooks (src/snap)
     *
     * Predecoded chains are a pure acceleration structure, so a
     * snapshot never serializes them: restore drops every entry and
     * lets execution re-decode from the restored memory image.  The
     * statistics, however, are architectural observables (they feed
     * obs::Counters), so they round-trip explicitly.
     */
    ///@{
    /** Drop every cached chain (entries refill lazily). */
    void
    invalidateAll()
    {
        for (Entry &e : entries_)
            e.length = 0;
    }

    /** Overwrite the statistic counters with snapshotted values. */
    void
    restoreStats(uint64_t hits, uint64_t misses,
                 uint64_t invalidations)
    {
        hits_ = hits;
        misses_ = misses;
        invalidations_ = invalidations;
    }
    ///@}

    /** @name Raw access for the fused interpreter loop
     *
     * core/exec.cc's runFused keeps these in locals so the hot hit
     * check does not re-load vector data pointers after every store
     * (uint8_t stores into the memory image may alias anything).  A
     * miss there simply falls back to lookup(), which fills (and
     * allocates the entry array if this node never executed before).
     */
    ///@{
    /** Index mask for this cache's slot count (entry count - 1). */
    size_t indexMask() const { return mask_; }
    /** The entry array, or nullptr before the first fill: callers
     *  take the slow path once and lookup() allocates. */
    const Entry *
    entriesData() const
    {
        return entries_.empty() ? nullptr : entries_.data();
    }
    const uint32_t *gensData() const { return gens_.data(); }
    void addHits(uint64_t n) { hits_ += n; }
    ///@}

    /** @name Raw access for the block-compiler tier (core/blockc.cc)
     *
     * A superblock execution emulates this cache's lookup per chain
     * so the hit/miss/invalidation counters -- which are architectural
     * observables -- stay bit-identical with the tier off.  A miss
     * whose code bytes are provably unchanged since compile time
     * (write generations match) refills the slot from the compiled
     * step image via entriesMut() and records it with noteMiss();
     * anything else deopts before executing.
     */
    ///@{
    Entry *
    entriesMut()
    {
        if (entries_.empty()) [[unlikely]]
            entries_.resize(nEntries_);
        return entries_.data();
    }
    /** Count one emulated fill (stale_tag: the displaced entry was
     *  the same chain, i.e. an invalidation). */
    void
    noteMiss(bool stale_tag)
    {
        ++misses_;
        if (stale_tag)
            ++invalidations_;
    }
    ///@}

  private:
    size_t
    indexOf(Word iptr) const
    {
        return static_cast<size_t>(iptr) & mask_;
    }

    Word
    lastByte(Word iptr, uint8_t length) const
    {
        return mem_->shape().truncate(
            iptr + static_cast<Word>(length - 1));
    }

    const Entry *
    fill(Word iptr)
    {
        ++misses_;
        if (entries_[indexOf(iptr)].length &&
            entries_[indexOf(iptr)].tag == iptr)
            ++invalidations_; // same chain, stale generations
        const WordShape &s = mem_->shape();
        uint8_t buf[isa::maxChainBytes];
        size_t n = 0;
        while (n < isa::maxChainBytes &&
               mem_->contains(s.truncate(iptr + n))) {
            buf[n] = mem_->readByte(s.truncate(iptr + n));
            ++n;
        }
        const isa::Predecoded d = isa::predecode(buf, n, s);
        if (!d.complete())
            return nullptr;
        Entry &e = entries_[indexOf(iptr)];
        e.tag = iptr;
        e.operand = d.operand;
        e.gidx = static_cast<uint32_t>(mem_->blockIndex(iptr));
        e.gidx2 = static_cast<uint32_t>(
            mem_->blockIndex(lastByte(iptr, d.length)));
        e.gen = gens_[e.gidx];
        e.gen2 = gens_[e.gidx2];
        e.length = d.length;
        e.pfixes = d.pfixes;
        e.nfixes = d.nfixes;
        e.fn = static_cast<uint8_t>(d.fn);
        e.flags = d.flags;
        e.offChip = !mem_->isOnChip(iptr) ||
                    !mem_->isOnChip(lastByte(iptr, d.length));
        return &e;
    }

    mem::Memory *mem_;
    const size_t nEntries_;      ///< slot count (power of two)
    const size_t mask_;          ///< nEntries_ - 1
    std::vector<uint32_t> gens_; ///< per-block write generations
    std::vector<Entry> entries_; ///< lazily sized to nEntries_
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t invalidations_ = 0;
};

} // namespace transputer::core

#endif // TRANSPUTER_CORE_ICACHE_HH
