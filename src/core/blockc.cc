/**
 * @file
 * The block compiler and its threaded (computed-goto) backend.  See
 * blockc.hh for the tier's contract; the executor here mirrors
 * exec.cc's runFused chain for chain -- the same hoisted locals, the
 * same spill/reload discipline, the same per-chain cycle charges and
 * counter updates -- and the equivalence tests (test_blockc) guard
 * the duplication.
 */

#include "core/blockc.hh"

#include "core/transputer.hh"
#include "isa/cycles.hh"
#include "isa/predecode.hh"

namespace transputer::core::blockc
{

using isa::Fn;
using isa::Op;
using isa::superop::Kind;

namespace
{

/** Signed range check for a host-width intermediate result. */
bool
overflows(const WordShape &s, int64_t v)
{
    return v > s.toSigned(s.mostPos) || v < s.toSigned(s.mostNeg);
}

/** Add a write-generation block to a guard set; false when full. */
bool
noteGuard(std::array<uint32_t, Superblock::kMaxGuards> &set,
          size_t &n, uint32_t gidx)
{
    for (size_t i = 0; i < n; ++i)
        if (set[i] == gidx)
            return true;
    if (n == Superblock::kMaxGuards)
        return false;
    set[n++] = gidx;
    return true;
}

/**
 * Worst-case cycle charge of one chain used as a non-final member of
 * a fused group (prefixes + base cost + worst data-access waits).
 * Fused groups are restricted to on-chip code, so there is no fetch
 * charge.  Only the kinds the fusion rules admit appear here.
 */
int
chainWorstCost(Kind k, const isa::Predecoded &d, int external_waits)
{
    int c = d.pfixes + d.nfixes;
    switch (k) {
      case Kind::Ldc:
      case Kind::Ldlp:
      case Kind::Adc:
        return c + 1;
      case Kind::Ldl:
        return c + 2 + external_waits;
      case Kind::Cj:
        return c + 4; // worst of taken (4) and not-taken (2)
      default:
        return c + 8 + external_waits; // unreachable; conservative
    }
}

} // namespace

// ---------------------------------------------------------------------
// compiler
// ---------------------------------------------------------------------

Superblock *
BlockCache::compile(mem::Memory &mem, const uint32_t *gens,
                    size_t icache_mask, const WordShape &s,
                    int external_waits, Word entry,
                    BlockBackend &backend)
{
    std::array<isa::Predecoded, kMaxSteps> dec;
    std::array<Word, kMaxSteps> tags;
    std::array<Kind, kMaxSteps> solo;
    std::array<uint32_t, Superblock::kMaxGuards> guard_set;
    size_t nguards = 0;
    size_t n = 0;
    bool loops = false;

    // Walk the static instruction stream from the entry, predecoding
    // chain by chain, following CALLs (static target) and CJ/OPR
    // fall-throughs, until something ends the block: a jump (J ends
    // it whether or not it is the back-edge), a dynamic-target
    // operation (ret/gcall), a non-fast or undefined chain, a revisit
    // (joins would replay earlier steps out of order), a full guard
    // set, or the step limit.
    Word ip = entry;
    while (n < kMaxSteps) {
        bool seen = false;
        for (size_t j = 0; j < n && !seen; ++j)
            seen = tags[j] == ip;
        if (seen)
            break;
        uint8_t buf[isa::maxChainBytes];
        size_t m = 0;
        while (m < isa::maxChainBytes &&
               mem.contains(s.truncate(ip + m))) {
            buf[m] = mem.readByte(s.truncate(ip + m));
            ++m;
        }
        const isa::Predecoded d = isa::predecode(buf, m, s);
        const Kind k = isa::superop::classify(d);
        if (k == Kind::kCount)
            break;
        const Word last =
            s.truncate(ip + static_cast<Word>(d.length - 1));
        const auto g1 = static_cast<uint32_t>(mem.blockIndex(ip));
        const auto g2 = static_cast<uint32_t>(mem.blockIndex(last));
        if (!noteGuard(guard_set, nguards, g1) ||
            !noteGuard(guard_set, nguards, g2))
            break;
        tags[n] = ip;
        dec[n] = d;
        solo[n] = k;
        ++n;
        const Word next = s.truncate(ip + d.length);
        if (k == Kind::J) {
            loops = s.truncate(next + d.operand) == entry;
            break;
        }
        if (k == Kind::Call) {
            const Word target = s.truncate(next + d.operand);
            if (target == entry) {
                loops = true;
                break;
            }
            ip = target;
            continue;
        }
        if (k == Kind::OpGeneric) {
            const Op op = static_cast<Op>(d.operand);
            if (op == Op::RET || op == Op::GCALL)
                break; // dynamic target: always the last step
        }
        ip = next;
    }
    if (n < kMinSteps)
        return nullptr; // negatively cached via the saturated heat slot

    Superblock &sb = blocks_[blockIndex(entry)];
    sb.valid = false;
    sb.entry = entry;
    sb.loops = loops;
    sb.nsteps = static_cast<uint16_t>(n);
    sb.primed = false;
    sb.missFence = 0;
    sb.visited = 0;
    sb.visitFence = 0;
    sb.steps.assign(n, Step{});
    sb.nguards = static_cast<uint8_t>(nguards);
    for (size_t i = 0; i < nguards; ++i)
        sb.guards[i] = {guard_set[i], gens[guard_set[i]]};

    for (size_t i = 0; i < n; ++i) {
        Step &st = sb.steps[i];
        const isa::Predecoded &d = dec[i];
        const Word tag = tags[i];
        const Word last =
            s.truncate(tag + static_cast<Word>(d.length - 1));
        st.tag = tag;
        st.next = s.truncate(tag + d.length);
        st.operand = d.operand;
        st.sop = s.toSigned(d.operand);
        st.slot = static_cast<uint32_t>(tag) &
                  static_cast<uint32_t>(icache_mask);
        st.gidx = static_cast<uint32_t>(mem.blockIndex(tag));
        st.gidx2 = static_cast<uint32_t>(mem.blockIndex(last));
        st.gen = gens[st.gidx];
        st.gen2 = gens[st.gidx2];
        st.length = d.length;
        st.pfixes = d.pfixes;
        st.nfixes = d.nfixes;
        st.fn = static_cast<uint8_t>(d.fn);
        st.flags = d.flags;
        st.offChip = !mem.isOnChip(tag) || !mem.isOnChip(last);
        st.kind = solo[i];
        st.solo = solo[i];
    }

    // priming needs every step resident in its own cache slot at
    // once, which aliasing step pairs can never achieve
    sb.primeable = true;
    for (size_t i = 0; i < n && sb.primeable; ++i)
        for (size_t j = i + 1; j < n; ++j)
            if (sb.steps[i].slot == sb.steps[j].slot) {
                sb.primeable = false;
                break;
            }

    // fusion pass: longest peephole match wins; the head step carries
    // the fused kind, members keep their solo kinds for fallback
    size_t i = 0;
    while (i < n) {
        bool backedge = false;
        if (solo[i] == Kind::Cj && i + 1 < n && solo[i + 1] == Kind::J)
            backedge = s.truncate(sb.steps[i + 1].next +
                                  dec[i + 1].operand) == entry;
        const Kind k = isa::superop::fuse(dec.data(), solo.data(), i,
                                          n, backedge);
        const int span = isa::superop::chainsOf(k);
        if (span > 1) {
            bool ok = true;
            for (int j = 0; j < span; ++j)
                ok = ok && !sb.steps[i + j].offChip;
            Word aux = 0;
            if (k == Kind::LdcAdcStl) {
                // fold the constant now; a folding that would set the
                // error flag stays unfused so the solo path reports it
                const int64_t r = s.toSigned(dec[i].operand) +
                                  s.toSigned(dec[i + 1].operand);
                if (overflows(s, r))
                    ok = false;
                else
                    aux = s.truncate(static_cast<uint64_t>(r));
            }
            int pre = 0;
            for (int j = 0; j + 1 < span; ++j)
                pre += chainWorstCost(solo[i + j], dec[i + j],
                                      external_waits);
            if (pre > 255)
                ok = false;
            if (ok) {
                sb.steps[i].kind = k;
                sb.steps[i].aux = aux;
                sb.steps[i].groupPreCost = static_cast<uint8_t>(pre);
                i += static_cast<size_t>(span);
                continue;
            }
        }
        ++i;
    }

    // cumulative retire accounting (see Superblock::cum)
    sb.cum.assign(n + 1, {});
    for (size_t k = 0; k < n; ++k) {
        Superblock::CumRow row = sb.cum[k];
        row.fn[sb.steps[k].fn] += 1;
        row.fn[static_cast<size_t>(Fn::PFIX)] += sb.steps[k].pfixes;
        row.fn[static_cast<size_t>(Fn::NFIX)] += sb.steps[k].nfixes;
        row.len += sb.steps[k].length;
        sb.cum[k + 1] = row;
    }

    sb.valid = true;
    ++stats_.compiles;
    stats_.steps += n;
    backend.prepare(sb);
    return &sb;
}

// ---------------------------------------------------------------------
// threaded backend
// ---------------------------------------------------------------------

#if defined(__GNUC__)

int
ThreadedBackend::run(Transputer &cpu, Superblock &sb, Tick bound,
                     int budget, Deopt &why)
{
    if (sb.primed && sb.missFence == cpu.icache_.misses())
        return exec<true>(cpu, sb, bound, budget, why);
    sb.primed = false; // a foreign fill may have displaced a slot
    return exec<false>(cpu, sb, bound, budget, why);
}

/**
 * The step interpreter.  Primed=true is the steady state: every
 * step's slot provably holds its chain (entry protocol in run()), so
 * the per-chain cache emulation reduces to banking a hit, and stores
 * re-check the block's guard generations instead.  Primed=false
 * emulates the cache lookup per chain exactly as PredecodeCache does,
 * accumulating the visited mask that upgrades the block.
 */
template <bool Primed>
int
ThreadedBackend::exec(Transputer &cpu, Superblock &sb, Tick bound,
                      int budget, Deopt &why)
{
    static const void *tbl[] = {
        &&L_J,      &&L_Ldlp,   &&L_Ldnl,   &&L_Ldc,   &&L_Ldnlp,
        &&L_Ldl,    &&L_Adc,    &&L_Call,   &&L_Cj,    &&L_Ajw,
        &&L_Eqc,    &&L_Stl,    &&L_Stnl,   &&L_OpAdd, &&L_OpSub,
        &&L_OpDiff, &&L_OpSum,  &&L_OpGt,   &&L_OpRev, &&L_OpWsub,
        &&L_OpBsub, &&L_OpAnd,  &&L_OpOr,   &&L_OpXor, &&L_OpNot,
        &&L_OpMint, &&L_OpDup,  &&L_OpLdpi, &&L_OpGeneric,
        &&L_LdcStl, &&L_LdlpStl, &&L_LdlStl, &&L_AdcStl,
        &&L_LdcAdcStl, &&L_LdlAdcStl, &&L_LdlLdlBinop, &&L_CjLoop,
    };
    static_assert(sizeof(tbl) / sizeof(tbl[0]) ==
                      isa::superop::kKinds,
                  "dispatch table must cover every superop kind");

    // no compiled instruction is interruptible (predecode's kFast
    // classification excludes them all)
    cpu.lastInstrInterruptible_ = false;
    cpu.inExec_ = true;
    const Tick period = cpu.cfg_.cyclePeriod;
    const WordShape s = cpu.shape_;
    Word iptr = cpu.iptr_, a = cpu.areg_, b = cpu.breg_,
         c = cpu.creg_, wp = cpu.wptr_;
    Tick t = cpu.time_, lis = cpu.lastInstrStart_;
    uint64_t cyc = cpu.cycles_, icount = cpu.instructions_;
    bool err = cpu.errorFlag_;
    bool halt_on_err = cpu.haltOnError_;
    const uint64_t cyc0 = cyc, icount0 = icount;
    int n = 0;
    // The current linear sweep of retired steps is [sweep0, ri);
    // its function counts and instruction bytes live only in the
    // compile-time cum rows until flushSweep folds the row
    // difference into the architectural counters.  flushSweep runs
    // inside spill() (every exit and every mid-block call into the
    // core spills first) and at every back-edge that restarts the
    // walk at step 0, where ri would move backwards.
    size_t ri = 0, sweep0 = 0;
    const Superblock::CumRow *const cum = sb.cum.data();
    const auto flushSweep = [&] {
        if (ri != sweep0) {
            const Superblock::CumRow &c1 = cum[ri];
            const Superblock::CumRow &c0 = cum[sweep0];
            for (size_t f = 0; f < c1.fn.size(); ++f)
                cpu.ctrs_.fn[f] += static_cast<uint64_t>(
                    c1.fn[f] - c0.fn[f]);
            icount += static_cast<uint64_t>(c1.len - c0.len);
            sweep0 = ri;
        }
    };
    const auto spill = [&] {
        flushSweep();
        cpu.iptr_ = iptr;
        cpu.areg_ = a;
        cpu.breg_ = b;
        cpu.creg_ = c;
        cpu.wptr_ = wp;
        cpu.time_ = t;
        cpu.lastInstrStart_ = lis;
        cpu.cycles_ = cyc;
        cpu.instructions_ = icount;
    };
    const auto reload = [&] {
        iptr = cpu.iptr_;
        a = cpu.areg_;
        b = cpu.breg_;
        c = cpu.creg_;
        wp = cpu.wptr_;
        t = cpu.time_;
        lis = cpu.lastInstrStart_;
        cyc = cpu.cycles_;
        err = cpu.errorFlag_;
        halt_on_err = cpu.haltOnError_;
    };
    PredecodeCache::Entry *const entries = cpu.icache_.entriesMut();
    const uint32_t *const gens = cpu.icache_.gensData();
    const Step *const steps = sb.steps.data();
    const size_t nsteps = sb.nsteps;
    uint64_t hits = 0;
    // The observation thresholds fold into the time bound: inside the
    // block, cycles and time advance in lockstep (every charge pairs
    // cyc += k with t += k*period), so the profiler's cycle threshold
    // maps exactly onto a tick and the per-chain bound check in
    // NEXT() already exits at the sampling boundary (Deopt::Bound) --
    // the outer tier loop fires the sample at that same chain
    // boundary before the next chain executes.  With observation
    // disabled both sentinels leave the bound untouched, so sampling
    // costs the hot loop nothing.  Recomputed after every reload:
    // mid-block calls into the core may move the clock.
    Tick xbound = bound;
    const auto foldObsBound = [&] {
        xbound = bound;
        if (cpu.tsNextTick_ != maxTick &&
            cpu.tsNextTick_ - 1 < xbound)
            xbound = cpu.tsNextTick_ - 1;
        if (cpu.profNextCycle_ != ~uint64_t{0}) {
            const Tick tProf =
                cpu.profNextCycle_ > cyc
                    ? t + static_cast<Tick>(
                              cpu.profNextCycle_ - cyc) *
                          period
                    : t;
            if (tProf - 1 < xbound)
                xbound = tProf - 1;
        }
    };
    foldObsBound();
    uint64_t visited =
        (!Primed && cpu.icache_.misses() == sb.visitFence)
            ? sb.visited
            : 0;
    size_t i = 0;
    const Step *st = nullptr;

// Per-chain retire prologue, mirroring runFused: cache-slot
// emulation (or a banked hit when primed), off-chip fetch charge,
// instruction/prefix/function accounting, iptr advance.  A miss
// whose compile image went stale deopts BEFORE executing the chain,
// exactly where the interpreter would re-decode the new bytes.
#define RETIRE(STEP, ADJ)                                              \
    do {                                                               \
        if (!Primed) {                                                 \
            PredecodeCache::Entry &sl = entries[(STEP)->slot];         \
            if (sl.length && sl.tag == (STEP)->tag &&                  \
                gens[sl.gidx] == sl.gen &&                             \
                gens[sl.gidx2] == sl.gen2) {                           \
                ++hits;                                                \
            } else {                                                   \
                if (gens[(STEP)->gidx] != (STEP)->gen ||               \
                    gens[(STEP)->gidx2] != (STEP)->gen2) {             \
                    why = Deopt::GuardStale;                           \
                    goto out;                                          \
                }                                                      \
                cpu.icache_.noteMiss(sl.length &&                      \
                                     sl.tag == (STEP)->tag);           \
                sl.tag = (STEP)->tag;                                  \
                sl.operand = (STEP)->operand;                          \
                sl.gidx = (STEP)->gidx;                                \
                sl.gidx2 = (STEP)->gidx2;                              \
                sl.gen = (STEP)->gen;                                  \
                sl.gen2 = (STEP)->gen2;                                \
                sl.length = (STEP)->length;                            \
                sl.pfixes = (STEP)->pfixes;                            \
                sl.nfixes = (STEP)->nfixes;                            \
                sl.fn = (STEP)->fn;                                    \
                sl.flags = (STEP)->flags;                              \
                sl.offChip = (STEP)->offChip;                          \
            }                                                          \
            visited |= uint64_t{1}                                     \
                       << static_cast<size_t>((STEP) - steps);         \
        } else {                                                       \
            ++hits;                                                    \
        }                                                              \
        if ((STEP)->offChip) {                                         \
            cpu.time_ = t;                                             \
            cpu.cycles_ = cyc;                                         \
            cpu.chargeFetchSpan((STEP)->tag, (STEP)->length);          \
            t = cpu.time_;                                             \
            cyc = cpu.cycles_;                                         \
        }                                                              \
        /* instruction and function counts flow through the sweep's   \
           cum rows, flushed in spill(); only the clock needs the     \
           prefixes here */                                            \
        if (const int pf__ = (STEP)->pfixes + (STEP)->nfixes) {        \
            cyc += static_cast<uint64_t>(pf__);                        \
            t += pf__ * period;                                        \
        }                                                              \
        /* post-prefix start, as executePredecoded records it: the    \
           field is snapshot state, so every tier must stamp every    \
           chain (grouped superops stamp each member through their    \
           interleaved RETIREs, leaving the last member's start) */   \
        lis = t;                                                       \
        iptr = (STEP)->next;                                           \
        /* past this chain: set only now -- the stale check above     \
           exits before the chain architecturally retires */           \
        ri = i + (ADJ) + 1;                                            \
    } while (0)

#define CHARGE(N)                                                      \
    do {                                                               \
        cyc += (N);                                                    \
        t += (N) * period;                                             \
    } while (0)

#define CHARGE_WAITS(ADDR)                                             \
    do {                                                               \
        if (const int w__ = cpu.mem_.accessWaits(ADDR)) {              \
            cyc += static_cast<uint64_t>(w__);                         \
            t += w__ * period;                                         \
        }                                                              \
    } while (0)

// After a store in primed mode: the skipped slot checks would have
// caught a store into this block's code, so the guard generations
// stand in for them.  The storing chain has already retired; the
// deopt lands on the following chain boundary, exactly where the
// interpreter would re-decode.
#define STORE_RECHECK()                                                \
    do {                                                               \
        if (Primed && !sb.guardsOk(gens)) {                            \
            why = Deopt::GuardStale;                                   \
            goto out;                                                  \
        }                                                              \
    } while (0)

#define HALT_CHECK()                                                   \
    do {                                                               \
        if (err && halt_on_err) {                                      \
            cpu.state_ = CpuState::Halted;                             \
            cpu.trcAt(t, obs::Ev::Halt,                                \
                      wp | static_cast<Word>(cpu.pri_));               \
            why = Deopt::Halt;                                         \
            goto out;                                                  \
        }                                                              \
    } while (0)

#define NEXT()                                                         \
    do {                                                               \
        if (n >= budget) {                                             \
            why = Deopt::Budget;                                       \
            goto out;                                                  \
        }                                                              \
        if (t > xbound) {                                              \
            why = Deopt::Bound;                                        \
            goto out;                                                  \
        }                                                              \
        if (i >= nsteps) {                                             \
            why = Deopt::End;                                          \
            goto out;                                                  \
        }                                                              \
        st = &steps[i];                                                \
        goto *tbl[static_cast<size_t>(Primed ? st->kind : st->solo)];  \
    } while (0)

    try {
        NEXT();

  L_J: {
        RETIRE(st, 0);
        CHARGE(3);
        const Word target = s.truncate(iptr + st->operand);
        iptr = target;
        cpu.flushFetchBuffer();
        ++n;
        spill();
        cpu.timesliceCheck(); // a descheduling point
        reload();
        foldObsBound();
        if (cpu.state_ != CpuState::Running) {
            why = Deopt::Deschedule;
            goto out;
        }
        if (iptr == sb.entry) {
            flushSweep();
            ri = sweep0 = 0;
            i = 0;
            NEXT();
        }
        // a timeslice rotation moved to another process at the same
        // code address; a plain forward/exit jump is a branch out
        why = iptr == target ? Deopt::BranchOut : Deopt::Deschedule;
        goto out;
      }

  L_Ldlp:
        RETIRE(st, 0);
        CHARGE(1);
        c = b;
        b = a;
        a = s.index(wp, st->sop);
        ++n;
        ++i;
        NEXT();

  L_Ldnl: {
        RETIRE(st, 0);
        CHARGE(2);
        const Word addr = s.index(s.wordAlign(a), st->sop);
        CHARGE_WAITS(addr);
        a = cpu.mem_.readWord(addr);
        ++n;
        ++i;
        NEXT();
      }

  L_Ldc:
        RETIRE(st, 0);
        CHARGE(1);
        c = b;
        b = a;
        a = st->operand;
        ++n;
        ++i;
        NEXT();

  L_Ldnlp:
        RETIRE(st, 0);
        CHARGE(1);
        a = s.index(a, st->sop);
        ++n;
        ++i;
        NEXT();

  L_Ldl: {
        RETIRE(st, 0);
        CHARGE(2);
        const Word addr = s.index(wp, st->sop);
        CHARGE_WAITS(addr);
        const Word v = cpu.mem_.readWord(addr);
        c = b;
        b = a;
        a = v;
        ++n;
        ++i;
        NEXT();
      }

  L_Adc: {
        RETIRE(st, 0);
        CHARGE(1);
        const int64_t r = s.toSigned(a) + st->sop;
        if (overflows(s, r)) {
            err = true;
            cpu.errorFlag_ = true;
        }
        a = s.truncate(static_cast<uint64_t>(r));
        ++n;
        ++i;
        HALT_CHECK();
        NEXT();
      }

  L_Call: {
        RETIRE(st, 0);
        CHARGE(7);
        const Word w = s.index(wp, -4);
        const Word vals[4] = {iptr, a, b, c};
        for (int j = 0; j < 4; ++j) {
            const Word addr = s.index(w, j);
            CHARGE_WAITS(addr);
            cpu.mem_.writeWord(addr, vals[j]);
        }
        a = iptr; // return address available to the callee
        wp = w;
        iptr = s.truncate(iptr + st->operand);
        cpu.flushFetchBuffer();
        ++n;
        ++i; // the walk continued at the static call target
        STORE_RECHECK();
        NEXT();
      }

  L_Cj: {
        RETIRE(st, 0);
        if (a == 0) {
            CHARGE(4);
            const Word target = s.truncate(iptr + st->operand);
            iptr = target;
            cpu.flushFetchBuffer();
            ++n;
            if (target == sb.entry) {
                flushSweep();
                ri = sweep0 = 0;
                i = 0;
                NEXT();
            }
            why = Deopt::BranchOut;
            goto out;
        }
        CHARGE(2);
        a = b;
        b = c;
        ++n;
        ++i;
        NEXT();
      }

  L_Ajw:
        RETIRE(st, 0);
        CHARGE(1);
        wp = s.index(wp, st->sop);
        ++n;
        ++i;
        NEXT();

  L_Eqc:
        RETIRE(st, 0);
        CHARGE(2);
        a = a == st->operand ? 1 : 0;
        ++n;
        ++i;
        NEXT();

  L_Stl: {
        RETIRE(st, 0);
        CHARGE(1);
        const Word addr = s.index(wp, st->sop);
        const Word v = a;
        a = b;
        b = c;
        CHARGE_WAITS(addr);
        cpu.mem_.writeWord(addr, v);
        ++n;
        ++i;
        STORE_RECHECK();
        NEXT();
      }

  L_Stnl: {
        RETIRE(st, 0);
        CHARGE(2);
        const Word addr = s.index(s.wordAlign(a), st->sop);
        CHARGE_WAITS(addr);
        cpu.mem_.writeWord(addr, b);
        a = c;
        ++n;
        ++i;
        STORE_RECHECK();
        NEXT();
      }

        // inlined fast operations: the OPR chain prologue plus the
        // operation's execOp body, with its base cycle charge
  L_OpAdd: {
        RETIRE(st, 0);
        ++cpu.ctrs_.op[st->operand];
        CHARGE(1);
        const int64_t r = s.toSigned(b) + s.toSigned(a);
        if (overflows(s, r)) {
            err = true;
            cpu.errorFlag_ = true;
        }
        a = s.truncate(static_cast<uint64_t>(r));
        b = c;
        ++n;
        ++i;
        HALT_CHECK();
        NEXT();
      }

  L_OpSub: {
        RETIRE(st, 0);
        ++cpu.ctrs_.op[st->operand];
        CHARGE(1);
        const int64_t r = s.toSigned(b) - s.toSigned(a);
        if (overflows(s, r)) {
            err = true;
            cpu.errorFlag_ = true;
        }
        a = s.truncate(static_cast<uint64_t>(r));
        b = c;
        ++n;
        ++i;
        HALT_CHECK();
        NEXT();
      }

  L_OpDiff:
        RETIRE(st, 0);
        ++cpu.ctrs_.op[st->operand];
        CHARGE(1);
        a = s.truncate(b - a);
        b = c;
        ++n;
        ++i;
        NEXT();

  L_OpSum:
        RETIRE(st, 0);
        ++cpu.ctrs_.op[st->operand];
        CHARGE(1);
        a = s.truncate(b + a);
        b = c;
        ++n;
        ++i;
        NEXT();

  L_OpGt:
        RETIRE(st, 0);
        ++cpu.ctrs_.op[st->operand];
        CHARGE(2);
        a = s.toSigned(b) > s.toSigned(a) ? 1 : 0;
        b = c;
        ++n;
        ++i;
        NEXT();

  L_OpRev: {
        RETIRE(st, 0);
        ++cpu.ctrs_.op[st->operand];
        CHARGE(1);
        const Word v = a;
        a = b;
        b = v;
        ++n;
        ++i;
        NEXT();
      }

  L_OpWsub:
        RETIRE(st, 0);
        ++cpu.ctrs_.op[st->operand];
        CHARGE(2);
        a = s.index(a, s.toSigned(b));
        b = c;
        ++n;
        ++i;
        NEXT();

  L_OpBsub:
        RETIRE(st, 0);
        ++cpu.ctrs_.op[st->operand];
        CHARGE(1);
        a = s.truncate(a + b);
        b = c;
        ++n;
        ++i;
        NEXT();

  L_OpAnd:
        RETIRE(st, 0);
        ++cpu.ctrs_.op[st->operand];
        CHARGE(1);
        a = b & a;
        b = c;
        ++n;
        ++i;
        NEXT();

  L_OpOr:
        RETIRE(st, 0);
        ++cpu.ctrs_.op[st->operand];
        CHARGE(1);
        a = b | a;
        b = c;
        ++n;
        ++i;
        NEXT();

  L_OpXor:
        RETIRE(st, 0);
        ++cpu.ctrs_.op[st->operand];
        CHARGE(1);
        a = b ^ a;
        b = c;
        ++n;
        ++i;
        NEXT();

  L_OpNot:
        RETIRE(st, 0);
        ++cpu.ctrs_.op[st->operand];
        CHARGE(1);
        a = s.truncate(~a);
        ++n;
        ++i;
        NEXT();

  L_OpMint:
        RETIRE(st, 0);
        ++cpu.ctrs_.op[st->operand];
        CHARGE(1);
        c = b;
        b = a;
        a = s.mostNeg;
        ++n;
        ++i;
        NEXT();

  L_OpDup:
        RETIRE(st, 0);
        ++cpu.ctrs_.op[st->operand];
        CHARGE(1);
        c = b;
        b = a;
        ++n;
        ++i;
        NEXT();

  L_OpLdpi:
        RETIRE(st, 0);
        ++cpu.ctrs_.op[st->operand];
        CHARGE(2);
        a = s.truncate(iptr + a);
        ++n;
        ++i;
        NEXT();

  L_OpGeneric: {
        // any other fast operation: spill, run the core's generic
        // operation path (it owns the counters and cycle charges),
        // reload, and re-join the block if control fell through --
        // this is how lend-loop back-edges, gcall/ret tails and the
        // error-flag operations stay inside the tier
        RETIRE(st, 0);
        spill();
        cpu.execOp(st->operand);
        reload();
        foldObsBound();
        ++n;
        if (err && halt_on_err) {
            cpu.state_ = CpuState::Halted;
            cpu.trcAt(t, obs::Ev::Halt, cpu.wdesc());
            why = Deopt::Halt;
            goto out;
        }
        if (cpu.state_ != CpuState::Running) {
            why = Deopt::Deschedule;
            goto out;
        }
        STORE_RECHECK();
        if (i + 1 < nsteps && iptr == steps[i + 1].tag) {
            ++i;
            NEXT();
        }
        if (iptr == sb.entry) {
            flushSweep();
            ri = sweep0 = 0;
            i = 0;
            NEXT();
        }
        why = Deopt::BranchOut;
        goto out;
      }

        // fused superops (primed dispatch only): the member chains'
        // bodies concatenated with the per-chain dispatch, bound and
        // budget checks hoisted into one conservative pre-check; near
        // a boundary the head re-enters through its solo handler
  L_LdcStl: {
        if (n + 2 > budget ||
            t + st->groupPreCost * period > xbound)
            goto *tbl[static_cast<size_t>(st->solo)];
        const Step *s1 = st + 1;
        RETIRE(st, 0);
        CHARGE(1);
        RETIRE(s1, 1);
        CHARGE(1);
        const Word addr = s.index(wp, s1->sop);
        CHARGE_WAITS(addr);
        cpu.mem_.writeWord(addr, st->operand);
        c = b;
        n += 2;
        i += 2;
        STORE_RECHECK();
        NEXT();
      }

  L_LdlpStl: {
        if (n + 2 > budget ||
            t + st->groupPreCost * period > xbound)
            goto *tbl[static_cast<size_t>(st->solo)];
        const Step *s1 = st + 1;
        RETIRE(st, 0);
        CHARGE(1);
        RETIRE(s1, 1);
        CHARGE(1);
        const Word addr = s.index(wp, s1->sop);
        CHARGE_WAITS(addr);
        cpu.mem_.writeWord(addr, s.index(wp, st->sop));
        c = b;
        n += 2;
        i += 2;
        STORE_RECHECK();
        NEXT();
      }

  L_LdlStl: {
        if (n + 2 > budget ||
            t + st->groupPreCost * period > xbound)
            goto *tbl[static_cast<size_t>(st->solo)];
        const Step *s1 = st + 1;
        RETIRE(st, 0);
        CHARGE(2);
        const Word src = s.index(wp, st->sop);
        CHARGE_WAITS(src);
        const Word v = cpu.mem_.readWord(src);
        RETIRE(s1, 1);
        CHARGE(1);
        const Word dst = s.index(wp, s1->sop);
        CHARGE_WAITS(dst);
        cpu.mem_.writeWord(dst, v);
        c = b;
        n += 2;
        i += 2;
        STORE_RECHECK();
        NEXT();
      }

  L_AdcStl: {
        if (n + 2 > budget ||
            t + st->groupPreCost * period > xbound)
            goto *tbl[static_cast<size_t>(st->solo)];
        const Step *s1 = st + 1;
        RETIRE(st, 0);
        CHARGE(1);
        const int64_t r = s.toSigned(a) + st->sop;
        if (overflows(s, r)) {
            err = true;
            cpu.errorFlag_ = true;
        }
        a = s.truncate(static_cast<uint64_t>(r));
        ++n;
        ++i;
        HALT_CHECK(); // the store must not run past a halting adc
        RETIRE(s1, 0); // i already advanced past the adc
        CHARGE(1);
        const Word addr = s.index(wp, s1->sop);
        const Word v = a;
        a = b;
        b = c;
        CHARGE_WAITS(addr);
        cpu.mem_.writeWord(addr, v);
        ++n;
        ++i;
        STORE_RECHECK();
        NEXT();
      }

  L_LdcAdcStl: {
        if (n + 3 > budget ||
            t + st->groupPreCost * period > xbound)
            goto *tbl[static_cast<size_t>(st->solo)];
        const Step *s1 = st + 1, *s2 = st + 2;
        RETIRE(st, 0);
        CHARGE(1);
        RETIRE(s1, 1);
        CHARGE(1);
        RETIRE(s2, 2);
        CHARGE(1);
        // constant folded at compile time (a folding that would
        // overflow is never fused); net stack effect of push+pop
        const Word addr = s.index(wp, s2->sop);
        CHARGE_WAITS(addr);
        cpu.mem_.writeWord(addr, st->aux);
        c = b;
        n += 3;
        i += 3;
        STORE_RECHECK();
        NEXT();
      }

  L_LdlAdcStl: {
        if (n + 3 > budget ||
            t + st->groupPreCost * period > xbound)
            goto *tbl[static_cast<size_t>(st->solo)];
        const Step *s1 = st + 1, *s2 = st + 2;
        RETIRE(st, 0);
        CHARGE(2);
        const Word src = s.index(wp, st->sop);
        CHARGE_WAITS(src);
        const Word v = cpu.mem_.readWord(src);
        ++n;
        RETIRE(s1, 1);
        CHARGE(1);
        const int64_t r = s.toSigned(v) + s1->sop;
        if (overflows(s, r)) {
            err = true;
            cpu.errorFlag_ = true;
            // materialize the halting adc's exact stack before exit
            c = b;
            b = a;
            a = s.truncate(static_cast<uint64_t>(r));
            ++n;
            ++i;
            ++i;
            HALT_CHECK();
            // error flag set but not halting: fall through via the
            // already-updated stack (the store pops it again)
            const Word dst0 = s.index(wp, s2->sop);
            const Word sv = a;
            a = b;
            b = c;
            RETIRE(s2, 0); // i already advanced past ldl and adc
            CHARGE(1);
            CHARGE_WAITS(dst0);
            cpu.mem_.writeWord(dst0, sv);
            ++n;
            ++i;
            STORE_RECHECK();
            NEXT();
        }
        RETIRE(s2, 2);
        CHARGE(1);
        const Word dst = s.index(wp, s2->sop);
        CHARGE_WAITS(dst);
        cpu.mem_.writeWord(dst, s.truncate(static_cast<uint64_t>(r)));
        c = b;
        n += 2;
        i += 3;
        STORE_RECHECK();
        NEXT();
      }

  L_LdlLdlBinop: {
        if (n + 3 > budget ||
            t + st->groupPreCost * period > xbound)
            goto *tbl[static_cast<size_t>(st->solo)];
        const Step *s1 = st + 1, *s2 = st + 2;
        RETIRE(st, 0);
        CHARGE(2);
        const Word src1 = s.index(wp, st->sop);
        CHARGE_WAITS(src1);
        const Word v1 = cpu.mem_.readWord(src1);
        c = b;
        b = a;
        a = v1;
        ++n;
        RETIRE(s1, 1);
        CHARGE(2);
        const Word src2 = s.index(wp, s1->sop);
        CHARGE_WAITS(src2);
        const Word v2 = cpu.mem_.readWord(src2);
        c = b;
        b = a;
        a = v2;
        ++n;
        RETIRE(s2, 2);
        ++cpu.ctrs_.op[s2->operand];
        switch (static_cast<Op>(s2->operand)) {
          case Op::ADD: {
            CHARGE(1);
            const int64_t r = s.toSigned(b) + s.toSigned(a);
            if (overflows(s, r)) {
                err = true;
                cpu.errorFlag_ = true;
            }
            a = s.truncate(static_cast<uint64_t>(r));
            b = c;
            break;
          }
          case Op::SUM:
            CHARGE(1);
            a = s.truncate(b + a);
            b = c;
            break;
          case Op::DIFF:
            CHARGE(1);
            a = s.truncate(b - a);
            b = c;
            break;
          case Op::GT:
            CHARGE(2);
            a = s.toSigned(b) > s.toSigned(a) ? 1 : 0;
            b = c;
            break;
          case Op::AND:
            CHARGE(1);
            a = b & a;
            b = c;
            break;
          case Op::OR:
            CHARGE(1);
            a = b | a;
            b = c;
            break;
          default: // XOR (binopFusable admits nothing else)
            CHARGE(1);
            a = b ^ a;
            b = c;
            break;
        }
        ++n;
        i += 3;
        HALT_CHECK();
        NEXT();
      }

  L_CjLoop: {
        if (n + 2 > budget ||
            t + st->groupPreCost * period > xbound)
            goto *tbl[static_cast<size_t>(st->solo)];
        const Step *s1 = st + 1;
        RETIRE(st, 0);
        if (a == 0) { // taken: leaves the loop, j never runs
            CHARGE(4);
            const Word target = s.truncate(iptr + st->operand);
            iptr = target;
            cpu.flushFetchBuffer();
            ++n;
            if (target == sb.entry) {
                flushSweep();
                ri = sweep0 = 0;
                i = 0;
                NEXT();
            }
            why = Deopt::BranchOut;
            goto out;
        }
        CHARGE(2);
        a = b;
        b = c;
        ++n;
        RETIRE(s1, 1);
        CHARGE(3);
        const Word jt = s.truncate(iptr + s1->operand);
        iptr = jt;
        cpu.flushFetchBuffer();
        ++n;
        spill();
        cpu.timesliceCheck(); // a descheduling point
        reload();
        foldObsBound();
        if (cpu.state_ != CpuState::Running) {
            why = Deopt::Deschedule;
            goto out;
        }
        if (iptr == sb.entry) {
            flushSweep();
            ri = sweep0 = 0;
            i = 0;
            NEXT();
        }
        why = iptr == jt ? Deopt::BranchOut : Deopt::Deschedule;
        goto out;
      }

  out:
        spill();
    } catch (...) {
        spill();
        cpu.icache_.addHits(hits);
        cpu.inExec_ = false;
        throw;
    }
    cpu.icache_.addHits(hits);
    {
        obs::BlockStats &bs = cpu.bcache_->stats();
        bs.chains += static_cast<uint64_t>(n);
        bs.instructions += icount - icount0;
        bs.cycles += cyc - cyc0;
    }
    if (!Primed) {
        sb.visited = visited;
        sb.visitFence = cpu.icache_.misses();
        const uint64_t full =
            nsteps >= 64 ? ~uint64_t{0}
                         : (uint64_t{1} << nsteps) - 1;
        if (sb.primeable && (visited & full) == full) {
            sb.primed = true;
            sb.missFence = cpu.icache_.misses();
        }
    }
    cpu.inExec_ = false;
    return n;

#undef RETIRE
#undef CHARGE
#undef CHARGE_WAITS
#undef STORE_RECHECK
#undef HALT_CHECK
#undef NEXT
}

#else // !__GNUC__: no computed goto; the tier stays disabled

int
ThreadedBackend::run(Transputer &, Superblock &, Tick, int,
                     Deopt &why)
{
    why = Deopt::Entry;
    return 0;
}

#endif

} // namespace transputer::core::blockc

// ---------------------------------------------------------------------
// Transputer integration (the tier entry points)
// ---------------------------------------------------------------------

namespace transputer::core
{

// the unique_ptr members need blockc's complete types to destroy
Transputer::~Transputer() = default;

obs::Counters
Transputer::counters() const
{
    obs::Counters c = ctrs_;
    c.instructions = instructions_;
    c.cycles = cycles_;
    c.icacheHits = icache_.hits();
    c.icacheMisses = icache_.misses();
    c.icacheInvalidations = icache_.invalidations();
    if (bcache_)
        c.blockc = bcache_->stats();
    return c;
}

void
Transputer::restoreBlockTier(const obs::BlockStats &s)
{
    if (bcache_) {
        bcache_->invalidateAll();
        bcache_->restoreStats(s);
    }
    // without a live cache the stats stay in ctrs_.blockc, which
    // importSnap already restored wholesale
}

bool
Transputer::blockBackendUsable()
{
#if defined(TRANSPUTER_BLOCKC) && defined(__GNUC__)
    return true;
#else
    return false;
#endif
}

/**
 * Whether compiling a superblock can pay off here: the tier's entry
 * and deopt overhead only amortizes over long chain runs, and the
 * fused tier's observed mean run length is the best predictor we
 * have.  Short-run workloads (branchy code, communication-bound
 * loops: dbsearch averages under five chains) run faster staying in
 * the fused tier, so promotion waits until the evidence says
 * otherwise.  With too small a sample the classic behavior (compile
 * at the heat threshold) is kept.  The decision reads only counters
 * that snapshots round-trip, so replays repeat it exactly.
 */
bool
Transputer::blockPromotionAllowed() const
{
    constexpr uint64_t kMinRuns = 32;     ///< sample size to trust
    constexpr uint64_t kMinMeanRun = 6;   ///< chains per fused run
    const auto &f = ctrs_.fused;
    return f.runs < kMinRuns ||
           f.instructions >= kMinMeanRun * f.runs;
}

void
Transputer::ensureBlockTier()
{
    if (!bcache_) {
        bcache_ = std::make_unique<blockc::BlockCache>();
        // stats accumulated (or snapshot-restored) while the tier had
        // no live cache were carried in ctrs_.blockc; counters()
        // reads the live cache once one exists
        bcache_->restoreStats(ctrs_.blockc);
        backend_ = std::make_unique<blockc::ThreadedBackend>();
    }
}

size_t
Transputer::blockTierFootprint() const
{
    return bcache_ ? bcache_->footprintBytes() +
                         sizeof(blockc::ThreadedBackend)
                   : 0;
}

int
Transputer::runBlocks(Tick bound, int budget)
{
    if (!blockCompileEnabled_ || !predecodeEnabled_ || oreg_ != 0 ||
        trace_ || budget <= 0 || state_ != CpuState::Running ||
        time_ > bound)
        return 0;
    ensureBlockTier();
    blockc::BlockCache &bc = *bcache_;
    blockc::Superblock *sb = bc.find(iptr_);
    if (!sb) {
        if (!bc.heat(iptr_))
            return 0;
        if (!blockPromotionAllowed()) {
            bc.cool(iptr_); // re-heats; run length may change
            return 0;
        }
        sb = bc.compile(mem_, icache_.gensData(),
                        icache_.indexMask(), shape_,
                        cfg_.externalWaits, iptr_, *backend_);
        if (!sb)
            return 0;
    }
    if (!sb->guardsOk(icache_.gensData())) {
        ++bc.stats().deopts[static_cast<size_t>(
            blockc::Deopt::Entry)];
        bc.invalidate(*sb);
        return 0;
    }
    ++bc.stats().enters;
    blockc::Deopt why = blockc::Deopt::End;
    const int n = backend_->run(*this, *sb, bound, budget, why);
    ++bc.stats().deopts[static_cast<size_t>(why)];
#ifdef TRANSPUTER_OBS
    // flight ring only (not the trace ring), and only the abnormal
    // reasons: Bound/Budget/End are how every batched dispatch ends,
    // and recording them would evict the scheduler history a
    // post-mortem actually needs.  A GuardStale streak before a hang
    // is exactly what this is for.
    if (flightOn_ && why != blockc::Deopt::Bound &&
        why != blockc::Deopt::Budget && why != blockc::Deopt::End)
        recordFlight(time_, obs::Ev::Deopt,
                     static_cast<uint64_t>(why),
                     static_cast<uint64_t>(n), 0);
#endif
    if (why == blockc::Deopt::GuardStale)
        bc.invalidate(*sb); // self-modified: re-heat and recompile
    return n;
}

bool
Transputer::wantsBlockEntry(Word iptr)
{
    // called from runFused at jump back-edges: a compiled (or
    // compilable-right-now) block at the target makes the fused loop
    // bail so the next dispatch enters the block at its proper head
    ensureBlockTier();
    blockc::BlockCache &bc = *bcache_;
    blockc::Superblock *sb = bc.find(iptr);
    if (!sb && bc.heat(iptr)) {
        if (!blockPromotionAllowed()) {
            bc.cool(iptr);
            return false;
        }
        sb = bc.compile(mem_, icache_.gensData(),
                        icache_.indexMask(), shape_,
                        cfg_.externalWaits, iptr, *backend_);
    }
    return sb != nullptr;
}

bool
Transputer::hasBlockAt(Word iptr) const
{
    return blockCompileEnabled_ && bcache_ &&
           bcache_->find(iptr) != nullptr;
}

void
Transputer::setBlockCompileEnabled(bool on)
{
    if (on && !blockBackendUsable())
        return;
    // the cache and backend (~75 KiB) appear on first use, so merely
    // enabling the tier keeps an idle node small
    blockCompileEnabled_ = on;
}

} // namespace transputer::core
