/**
 * @file
 * Instruction execution: the thirteen direct functions, the two
 * prefixing functions, and the indirect operations (paper sections
 * 3.2.5 - 3.2.9).
 */

#include <bit>
#include <ostream>

#include "base/format.hh"
#include "core/transputer.hh"
#include "isa/cycles.hh"
#include "isa/disasm.hh"
#include "isa/encoding.hh"
#include "isa/predecode.hh"

namespace transputer::core
{

using isa::Fn;
using isa::Op;
namespace cyc = transputer::isa::cycles;

namespace
{

/** Signed range check for a host-width intermediate result. */
bool
overflows(const WordShape &s, int64_t v)
{
    return v > s.toSigned(s.mostPos) || v < s.toSigned(s.mostNeg);
}

} // namespace

bool
Transputer::fetchBufferHolds(Word word_addr) const
{
    // the buffered word must be the right one AND unwritten since it
    // was buffered (self-modifying code, link DMA into code)
    return lastFetchValid_ && lastFetchWord_ == word_addr &&
           mem_.writeGen(word_addr) == lastFetchGen_;
}

void
Transputer::setFetchBuffer(Word word_addr)
{
    lastFetchWord_ = word_addr;
    lastFetchGen_ = mem_.writeGen(word_addr);
    lastFetchValid_ = true;
}

void
Transputer::repinFetchBuffer()
{
    // after a restore the buffered word's content is byte-identical
    // to what was buffered (the whole image round-trips), but the
    // write-generation counters are process-local and were bumped by
    // the restore itself; re-reading the current generation keeps the
    // buffer valid without re-charging the fetch
    if (lastFetchValid_)
        lastFetchGen_ = mem_.writeGen(lastFetchWord_);
}

uint8_t
Transputer::fetchByte()
{
    // instruction fetch is word-granular (section 3.2.5: "as memory
    // is word accessed, a 32 bit transputer will receive four
    // instructions for every fetch"); off-chip code therefore pays
    // its wait states once per word of instructions, not per byte
    if (!mem_.isOnChip(iptr_)) {
        const Word w = shape_.wordAlign(iptr_);
        if (!fetchBufferHolds(w)) {
            chargeCycles(mem_.accessWaits(iptr_));
            setFetchBuffer(w);
        }
    }
    const uint8_t b = mem_.readByte(iptr_);
    iptr_ = shape_.truncate(iptr_ + 1);
    return b;
}

void
Transputer::chargeFetchSpan(Word start, int length)
{
    // same word-granular accounting as fetchByte, for a whole
    // predecoded chain at once
    Word w = shape_.wordAlign(start);
    const Word last = shape_.wordAlign(
        shape_.truncate(start + static_cast<Word>(length - 1)));
    while (true) {
        if (!mem_.isOnChip(w) && !fetchBufferHolds(w)) {
            chargeCycles(mem_.accessWaits(w));
            setFetchBuffer(w);
        }
        if (w == last)
            break;
        w = shape_.truncate(w + static_cast<Word>(shape_.bytes));
    }
}

bool
Transputer::executeOne()
{
    // Predecode fast path: a cache hit executes the whole prefix
    // chain in one step.  Resuming mid-chain after an interrupt
    // (oreg_ != 0) and tracing keep the byte-at-a-time path.
    if (predecodeEnabled_ && oreg_ == 0 && !trace_) {
        if (const auto *e = icache_.lookup(iptr_)) {
            executePredecoded(*e);
            return (e->flags & isa::pflag::kFast) != 0;
        }
    }
    executeOneSlow();
    return false;
}

void
Transputer::executePredecoded(const PredecodeCache::Entry &e)
{
    lastInstrInterruptible_ = false;
    inExec_ = true;
    if (e.offChip)
        chargeFetchSpan(iptr_, e.length);
    instructions_ += e.length;
    if (const int prefixes = e.pfixes + e.nfixes) {
        ctrs_.fn[static_cast<size_t>(Fn::PFIX)] += e.pfixes;
        ctrs_.fn[static_cast<size_t>(Fn::NFIX)] += e.nfixes;
        chargeCycles(prefixes);
    }
    // after the prefix charges, so the interruptible-instruction
    // window seen by serviceInterrupt matches the byte-at-a-time path
    // (which starts a fresh instruction at the final chain byte)
    lastInstrStart_ = time_;
    ++ctrs_.fn[e.fn];
    iptr_ = shape_.truncate(iptr_ + e.length);
    const Fn fn = static_cast<Fn>(e.fn);
    if (fn == Fn::OPR)
        execOp(e.operand);
    else
        execDirect(fn, e.operand);
    inExec_ = false;
    if (errorFlag_ && haltOnError_) {
        state_ = CpuState::Halted;
        trc(obs::Ev::Halt, wdesc());
    }
}

int
Transputer::runFused(Tick bound, int budget)
{
    // The fused inner loop: cached fast (event-free, non-descheduling)
    // instructions execute with the common direct functions inlined
    // and the hot CPU state (registers, iptr, local time) hoisted
    // into locals -- stores into the byte-addressed memory image may
    // alias any member, so working through `this` would force the
    // compiler to reload everything after every write.  Anything not
    // inlined here (cache miss, non-fast entry, call, opr) returns to
    // the caller, which runs one instruction through the generic path
    // and re-enters.  The cycle charges and side-effect order below
    // mirror execDirect exactly; the cache on/off bit-equivalence
    // tests guard the duplication.
    if (!predecodeEnabled_ || oreg_ != 0 || trace_ || budget <= 0)
        return 0;
    // no inlined instruction is interruptible, and serviceInterrupt
    // only reads lastInstrStart_ when the last one was
    lastInstrInterruptible_ = false;
    inExec_ = true;
    const Tick period = cfg_.cyclePeriod;
    const bool halt_on_err = haltOnError_;
    const WordShape s = shape_;
    Word iptr = iptr_, a = areg_, b = breg_, c = creg_, wp = wptr_;
    Tick t = time_, lis = lastInstrStart_;
    uint64_t cyc = cycles_, icount = instructions_;
    const uint64_t cyc0 = cyc; // per-tier cycle attribution (tprof)
    bool err = errorFlag_;
    int n = 0;
    bool bail = false; // a back-edge reached a compiled superblock
    const auto spill = [&] {
        iptr_ = iptr;
        areg_ = a;
        breg_ = b;
        creg_ = c;
        wptr_ = wp;
        time_ = t;
        lastInstrStart_ = lis;
        cycles_ = cyc;
        instructions_ = icount;
    };
    const auto reload = [&] {
        iptr = iptr_;
        a = areg_;
        b = breg_;
        c = creg_;
        wp = wptr_;
        t = time_;
        lis = lastInstrStart_;
        cyc = cycles_;
    };
    const PredecodeCache::Entry *const entries =
        icache_.entriesData();
    if (!entries) {
        // never filled: one generic-path instruction makes lookup()
        // allocate the entry array, then we re-enter with it live
        inExec_ = false;
        return 0;
    }
    const size_t imask = icache_.indexMask();
    const uint32_t *const gens = icache_.gensData();
    uint64_t hits = 0;
    bool running = state_ == CpuState::Running;
    // observation thresholds, hoisted like the rest of the hot state
    // (memory stores may alias any member); ~0/maxTick sentinels keep
    // the disabled path at two compares per chain
    uint64_t profNext = profNextCycle_;
    Tick tsNext = tsNextTick_;
    try {
        while (n < budget && t <= bound && running && !bail) {
            if (cyc >= profNext || t >= tsNext) {
                // chain boundary crossed a sampling threshold: fire
                // with the architectural state spilled (oreg_ is 0
                // throughout the fused loop)
                spill();
                obsBoundaryFire(obs::kTierFused);
                reload();
                profNext = profNextCycle_;
                tsNext = tsNextTick_;
            }
            const auto &e =
                entries[static_cast<size_t>(iptr) & imask];
            if (!(e.length && e.tag == iptr &&
                  gens[e.gidx] == e.gen && gens[e.gidx2] == e.gen2))
                break; // miss: the generic path fills and executes
            if (!(e.flags & isa::pflag::kFast))
                break;
            const Fn fn = static_cast<Fn>(e.fn);
            if (fn == Fn::OPR || fn == Fn::CALL)
                break; // generic path handles these (fused if fast)
            ++hits;
            if (e.offChip) {
                time_ = t;
                cycles_ = cyc;
                chargeFetchSpan(iptr, e.length);
                t = time_;
                cyc = cycles_;
            }
            icount += e.length;
            if (const int pf = e.pfixes + e.nfixes) {
                ctrs_.fn[static_cast<size_t>(Fn::PFIX)] += e.pfixes;
                ctrs_.fn[static_cast<size_t>(Fn::NFIX)] += e.nfixes;
                cyc += static_cast<uint64_t>(pf);
                t += pf * period;
            }
            ++ctrs_.fn[e.fn];
            // post-prefix start, as executePredecoded records it:
            // never read on this path (nothing inlined here is
            // interruptible), but the field is snapshot state, so
            // every tier must stamp every chain identically
            lis = t;
            iptr = s.truncate(iptr + e.length);
            const Word operand = e.operand;
            switch (fn) {
              case Fn::J:
                cyc += 3;
                t += 3 * period;
                iptr = s.truncate(iptr + operand);
                flushFetchBuffer();
                spill();
                timesliceCheck(); // a descheduling point
                reload();
                running = state_ == CpuState::Running;
                // hand hot loop heads to the block tier: back-edges
                // are where superblocks begin, and entering one
                // mid-fused-run would skip its entry protocol
                if (running && blockCompileEnabled_ &&
                    wantsBlockEntry(iptr))
                    bail = true;
                break;

              case Fn::LDLP:
                cyc += 1;
                t += period;
                c = b;
                b = a;
                a = s.index(wp, s.toSigned(operand));
                break;

              case Fn::LDNL: {
                cyc += 2;
                t += 2 * period;
                const Word addr =
                    s.index(s.wordAlign(a), s.toSigned(operand));
                if (const int w = mem_.accessWaits(addr)) {
                    cyc += static_cast<uint64_t>(w);
                    t += w * period;
                }
                a = mem_.readWord(addr);
                break;
              }

              case Fn::LDC:
                cyc += 1;
                t += period;
                c = b;
                b = a;
                a = operand;
                break;

              case Fn::LDNLP:
                cyc += 1;
                t += period;
                a = s.index(a, s.toSigned(operand));
                break;

              case Fn::LDL: {
                cyc += 2;
                t += 2 * period;
                const Word addr = s.index(wp, s.toSigned(operand));
                if (const int w = mem_.accessWaits(addr)) {
                    cyc += static_cast<uint64_t>(w);
                    t += w * period;
                }
                const Word v = mem_.readWord(addr);
                c = b;
                b = a;
                a = v;
                break;
              }

              case Fn::ADC: {
                cyc += 1;
                t += period;
                const int64_t r =
                    s.toSigned(a) + s.toSigned(operand);
                if (overflows(s, r)) {
                    err = true;
                    errorFlag_ = true;
                }
                a = s.truncate(static_cast<uint64_t>(r));
                break;
              }

              case Fn::CJ:
                if (a == 0) {
                    cyc += 4;
                    t += 4 * period;
                    iptr = s.truncate(iptr + operand);
                    flushFetchBuffer();
                    if (blockCompileEnabled_ && wantsBlockEntry(iptr))
                        bail = true; // taken back-edge onto a block
                } else {
                    cyc += 2;
                    t += 2 * period;
                    a = b;
                    b = c;
                }
                break;

              case Fn::AJW:
                cyc += 1;
                t += period;
                wp = s.index(wp, s.toSigned(operand));
                break;

              case Fn::EQC:
                cyc += 2;
                t += 2 * period;
                a = (a == operand) ? 1 : 0;
                break;

              case Fn::STL: {
                cyc += 1;
                t += period;
                const Word addr = s.index(wp, s.toSigned(operand));
                const Word v = a;
                a = b;
                b = c;
                if (const int w = mem_.accessWaits(addr)) {
                    cyc += static_cast<uint64_t>(w);
                    t += w * period;
                }
                mem_.writeWord(addr, v);
                break;
              }

              case Fn::STNL: {
                cyc += 2;
                t += 2 * period;
                const Word addr =
                    s.index(s.wordAlign(a), s.toSigned(operand));
                if (const int w = mem_.accessWaits(addr)) {
                    cyc += static_cast<uint64_t>(w);
                    t += w * period;
                }
                mem_.writeWord(addr, b);
                a = c;
                break;
              }

              default:
                break; // unreachable: pfix/nfix never end a chain
            }
            ++n;
            if (err && halt_on_err) {
                state_ = CpuState::Halted;
                trcAt(t, obs::Ev::Halt,
                      wp | static_cast<Word>(pri_));
                break;
            }
        }
    } catch (...) {
        spill();
        icache_.addHits(hits);
        inExec_ = false;
        throw;
    }
    spill();
    icache_.addHits(hits);
    // host-side statistics: one fused run of n instructions (bucketed
    // by bit_width, so bucket 0 is the empty run)
    ++ctrs_.fused.runs;
    ctrs_.fused.instructions += static_cast<uint64_t>(n);
    ctrs_.fused.cycles += cyc - cyc0;
    ++ctrs_.fused.lenLog2[std::bit_width(static_cast<uint32_t>(n))];
    inExec_ = false;
    return n;
}

void
Transputer::executeOneSlow()
{
    lastInstrStart_ = time_;
    lastInstrInterruptible_ = false;
    inExec_ = true;
    if (trace_) {
        uint8_t buf[8];
        for (int i = 0; i < 8; ++i)
            buf[i] = mem_.readByte(shape_.truncate(iptr_ + i));
        const auto d = isa::decode(buf, sizeof(buf), 0, shape_);
        std::string text = !d.complete
            ? std::string("pfix chain...")
            : d.isOperation && isa::opDefined(d.operand)
            ? std::string(isa::opName(static_cast<Op>(d.operand)))
            : fmt("{} #{}", isa::fnName(d.fn), hexWord(d.operand, 4));
        *trace_ << name_ << " t=" << time_ << " I=" << hexWord(iptr_)
                << " W=" << hexWord(wptr_) << " A=" << hexWord(areg_)
                << " B=" << hexWord(breg_) << " C=" << hexWord(creg_)
                << "  " << text << "\n";
    }
    const uint8_t b = fetchByte();
    ++instructions_;
    const Fn fn = static_cast<Fn>(b >> 4);
    ++ctrs_.fn[b >> 4];
    oreg_ = shape_.truncate(oreg_ | (b & 0x0F));
    switch (fn) {
      case Fn::PFIX:
        oreg_ = shape_.truncate(oreg_ << 4);
        chargeCycles(1);
        break;
      case Fn::NFIX:
        oreg_ = shape_.truncate(~oreg_ << 4);
        chargeCycles(1);
        break;
      case Fn::OPR: {
        const Word op = oreg_;
        oreg_ = 0;
        execOp(op);
        break;
      }
      default: {
        const Word operand = oreg_;
        oreg_ = 0;
        execDirect(fn, operand);
        break;
      }
    }
    inExec_ = false;
    if (errorFlag_ && haltOnError_) {
        state_ = CpuState::Halted;
        trc(obs::Ev::Halt, wdesc());
    }
}

void
Transputer::execDirect(Fn fn, Word operand)
{
    const int64_t sop = shape_.toSigned(operand);
    switch (fn) {
      case Fn::J:
        chargeCycles(cyc::direct(fn));
        iptr_ = shape_.truncate(iptr_ + operand);
        flushFetchBuffer();
        timesliceCheck(); // a descheduling point (section 3.2.4)
        break;

      case Fn::LDLP:
        chargeCycles(cyc::direct(fn));
        push(shape_.index(wptr_, sop));
        break;

      case Fn::LDNL:
        chargeCycles(cyc::direct(fn));
        areg_ = readWord(shape_.index(shape_.wordAlign(areg_), sop));
        break;

      case Fn::LDC:
        chargeCycles(cyc::direct(fn));
        push(operand);
        break;

      case Fn::LDNLP:
        chargeCycles(cyc::direct(fn));
        areg_ = shape_.index(areg_, sop);
        break;

      case Fn::LDL:
        chargeCycles(cyc::direct(fn));
        push(readWord(shape_.index(wptr_, sop)));
        break;

      case Fn::ADC: {
        chargeCycles(cyc::direct(fn));
        const int64_t r = shape_.toSigned(areg_) + sop;
        if (overflows(shape_, r))
            setError();
        areg_ = shape_.truncate(static_cast<uint64_t>(r));
        break;
      }

      case Fn::CALL: {
        chargeCycles(cyc::direct(fn));
        const Word w = shape_.index(wptr_, -4);
        writeWord(shape_.index(w, 0), iptr_);
        writeWord(shape_.index(w, 1), areg_);
        writeWord(shape_.index(w, 2), breg_);
        writeWord(shape_.index(w, 3), creg_);
        areg_ = iptr_; // return address available to the callee
        wptr_ = w;
        iptr_ = shape_.truncate(iptr_ + operand);
        flushFetchBuffer();
        break;
      }

      case Fn::CJ:
        if (areg_ == 0) {
            chargeCycles(cyc::direct(fn, true));
            iptr_ = shape_.truncate(iptr_ + operand);
            flushFetchBuffer();
        } else {
            chargeCycles(cyc::direct(fn, false));
            pop();
        }
        break;

      case Fn::AJW:
        chargeCycles(cyc::direct(fn));
        wptr_ = shape_.index(wptr_, sop);
        break;

      case Fn::EQC:
        chargeCycles(cyc::direct(fn));
        areg_ = (areg_ == operand) ? 1 : 0;
        break;

      case Fn::STL:
        chargeCycles(cyc::direct(fn));
        writeWord(shape_.index(wptr_, sop), pop());
        break;

      case Fn::STNL: {
        chargeCycles(cyc::direct(fn));
        const Word addr = shape_.index(shape_.wordAlign(areg_), sop);
        writeWord(addr, breg_);
        areg_ = creg_;
        break;
      }

      case Fn::PFIX:
      case Fn::NFIX:
      case Fn::OPR:
        panic("prefix/opr reached execDirect");
    }
}

void
Transputer::execOp(Word operation)
{
    if (!isa::opDefined(operation))
        fatal("{}: undefined operation #{} at iptr #{}", name_,
              hexWord(operation, 4), hexWord(iptr_));
    const Op op = static_cast<Op>(operation);
    ++ctrs_.op[operation];
    chargeCycles(cyc::op(op));
    const int bits = shape_.bits;

    switch (op) {
      case Op::REV:
        std::swap(areg_, breg_);
        break;

      case Op::LB:
        areg_ = readByte(areg_);
        break;

      case Op::BSUB:
        areg_ = shape_.truncate(areg_ + breg_);
        breg_ = creg_;
        break;

      case Op::ENDP: {
        // Areg points at the (successor Iptr, count) pair
        const Word p = shape_.wordAlign(areg_);
        const Word count = readWord(shape_.index(p, 1));
        if (count == 1) {
            // last component: continue as the successor process
            wptr_ = p;
            iptr_ = readWord(shape_.index(p, 0));
            flushFetchBuffer();
        } else {
            writeWord(shape_.index(p, 1), shape_.truncate(count - 1));
            descheduleCurrent(false); // this component terminates
        }
        break;
      }

      case Op::DIFF:
        areg_ = shape_.truncate(breg_ - areg_);
        breg_ = creg_;
        break;

      case Op::ADD: {
        const int64_t r = shape_.toSigned(breg_) + shape_.toSigned(areg_);
        if (overflows(shape_, r))
            setError();
        areg_ = shape_.truncate(static_cast<uint64_t>(r));
        breg_ = creg_;
        break;
      }

      case Op::GCALL:
        std::swap(areg_, iptr_);
        flushFetchBuffer();
        break;

      case Op::IN: {
        const Word count = areg_, chan = breg_, ptr = creg_;
        channelIn(count, chan, ptr);
        break;
      }

      case Op::PROD:
        chargeCycles(cyc::prod(areg_));
        areg_ = shape_.truncate(static_cast<uint64_t>(breg_) *
                                static_cast<uint64_t>(areg_));
        breg_ = creg_;
        break;

      case Op::GT:
        areg_ = shape_.toSigned(breg_) > shape_.toSigned(areg_) ? 1 : 0;
        breg_ = creg_;
        break;

      case Op::WSUB:
        areg_ = shape_.index(areg_, shape_.toSigned(breg_));
        breg_ = creg_;
        break;

      case Op::OUT: {
        const Word count = areg_, chan = breg_, ptr = creg_;
        channelOut(count, chan, ptr);
        break;
      }

      case Op::SUB: {
        const int64_t r = shape_.toSigned(breg_) - shape_.toSigned(areg_);
        if (overflows(shape_, r))
            setError();
        areg_ = shape_.truncate(static_cast<uint64_t>(r));
        breg_ = creg_;
        break;
      }

      case Op::STARTP: {
        const Word w = shape_.wordAlign(areg_);
        wsWrite(w, ws::iptr, shape_.truncate(iptr_ + breg_));
        scheduleProcess(w | static_cast<Word>(pri_));
        pop();
        pop();
        break;
      }

      case Op::OUTBYTE: {
        // A = channel, B = byte value (the channel is loaded last)
        const Word chan = areg_;
        writeWord(wptr_, breg_ & 0xFF); // Wptr[0] is the byte buffer
        channelOut(1, chan, wptr_);
        break;
      }

      case Op::OUTWORD: {
        const Word chan = areg_;
        writeWord(wptr_, breg_);
        channelOut(static_cast<Word>(shape_.bytes), chan, wptr_);
        break;
      }

      case Op::SETERR:
        setError();
        break;

      case Op::RESETCH: {
        const Word chan = areg_;
        if (ChannelPort *port = portFor(chan)) {
            port->reset();
            areg_ = notProcess();
        } else {
            areg_ = readWord(chan);
            writeWord(chan, notProcess());
        }
        break;
      }

      case Op::CSUB0:
        // A = limit, B = index: error unless index in [0, limit)
        if (breg_ >= areg_)
            setError();
        areg_ = breg_;
        breg_ = creg_;
        break;

      case Op::STOPP:
        descheduleCurrent(true);
        break;

      case Op::LADD: {
        const int64_t r = shape_.toSigned(breg_) +
                          shape_.toSigned(areg_) +
                          static_cast<int64_t>(creg_ & 1);
        if (overflows(shape_, r))
            setError();
        areg_ = shape_.truncate(static_cast<uint64_t>(r));
        break;
      }

      case Op::STLB:
        bptr_[1] = shape_.wordAlign(areg_);
        pop();
        break;

      case Op::STHF:
        fptr_[0] = areg_ == notProcess() ? areg_
                                         : shape_.wordAlign(areg_);
        pop();
        break;

      case Op::NORM: {
        // double word (hi = Breg, lo = Areg) shifted left until the
        // top bit of hi is set; Creg receives the shift distance
        uint64_t v = (static_cast<uint64_t>(breg_) << bits) | areg_;
        int places = 0;
        if (v == 0) {
            places = 2 * bits;
        } else {
            const uint64_t top = uint64_t{1} << (2 * bits - 1);
            while (!(v & top)) {
                v <<= 1;
                ++places;
            }
        }
        chargeCycles(cyc::norm(places));
        areg_ = shape_.truncate(v);
        breg_ = shape_.truncate(v >> bits);
        creg_ = shape_.truncate(static_cast<uint64_t>(places));
        break;
      }

      case Op::LDIV: {
        chargeCycles(cyc::ldiv(shape_));
        // unsigned (Creg:Breg) / Areg -> quotient Areg, rem Breg
        if (creg_ >= areg_) {
            setError(); // quotient would not fit in a word
            areg_ = 0;
            breg_ = 0;
        } else {
            const uint64_t dividend =
                (static_cast<uint64_t>(creg_) << bits) | breg_;
            const uint64_t d = areg_;
            areg_ = shape_.truncate(dividend / d);
            breg_ = shape_.truncate(dividend % d);
        }
        break;
      }

      case Op::LDPI:
        areg_ = shape_.truncate(iptr_ + areg_);
        break;

      case Op::STLF:
        fptr_[1] = areg_ == notProcess() ? areg_
                                         : shape_.wordAlign(areg_);
        pop();
        break;

      case Op::XDBLE:
        creg_ = breg_;
        breg_ = shape_.isNeg(areg_) ? shape_.mask : 0;
        break;

      case Op::LDPRI:
        push(static_cast<Word>(pri_));
        break;

      case Op::REM: {
        chargeCycles(cyc::rem(shape_));
        if (areg_ == 0 ||
            (areg_ == shape_.mask && breg_ == shape_.mostNeg)) {
            setError();
            areg_ = 0;
        } else {
            const int64_t r = shape_.toSigned(breg_) %
                              shape_.toSigned(areg_);
            areg_ = shape_.truncate(static_cast<uint64_t>(r));
        }
        breg_ = creg_;
        break;
      }

      case Op::RET:
        iptr_ = readWord(wptr_);
        wptr_ = shape_.index(wptr_, 4);
        flushFetchBuffer();
        break;

      case Op::LEND: {
        // Breg -> control block {index, count}; Areg = bytes back
        const Word ctrl = shape_.wordAlign(breg_);
        const Word count =
            shape_.truncate(readWord(shape_.index(ctrl, 1)) - 1);
        writeWord(shape_.index(ctrl, 1), count);
        if (shape_.toSigned(count) > 0) {
            chargeCycles(5); // 10 total on the looping path
            writeWord(ctrl,
                      shape_.truncate(readWord(ctrl) + 1)); // index++
            iptr_ = shape_.truncate(iptr_ - areg_);
            flushFetchBuffer();
            timesliceCheck(); // a descheduling point
        }
        break;
      }

      case Op::LDTIMER:
        push(clockReg(pri_));
        break;

      case Op::TESTERR:
        push(errorFlag_ ? 0 : 1);
        errorFlag_ = false;
        break;

      case Op::TESTPRANAL:
        push(0);
        break;

      case Op::TIN: {
        const Word t = areg_;
        pop();
        if (timeAfter(pri_, shape_.truncate(t + 1))) {
            break; // already past
        }
        chargeCycles(22); // 30 total on the waiting path
        wsWrite(wptr_, ws::time, shape_.truncate(t + 1));
        timerInsert(pri_, wptr_, shape_.truncate(t + 1));
        descheduleCurrent(true);
        break;
      }

      case Op::DIV: {
        chargeCycles(cyc::div(shape_));
        if (areg_ == 0 ||
            (areg_ == shape_.mask && breg_ == shape_.mostNeg)) {
            setError();
            areg_ = 0;
        } else {
            const int64_t q = shape_.toSigned(breg_) /
                              shape_.toSigned(areg_);
            areg_ = shape_.truncate(static_cast<uint64_t>(q));
        }
        breg_ = creg_;
        break;
      }

      case Op::DIST: {
        // A = offset, B = guard, C = time
        const Word offset = areg_, guard = breg_, t = creg_;
        bool fired = false;
        if (guard != 0) {
            const Word tlink = wsRead(wptr_, ws::tlink);
            if (tlink != timeSet() && tlink != timeNotSet())
                timerRemove(pri_, wptr_); // still on the timer queue
            if (timeAfter(pri_, shape_.truncate(t + 1)) &&
                readWord(wptr_) == noneSelected()) {
                writeWord(wptr_, offset);
                fired = true;
            }
        }
        areg_ = fired ? 1 : 0;
        breg_ = creg_;
        break;
      }

      case Op::DISC: {
        // A = offset, B = guard, C = channel
        const Word offset = areg_, guard = breg_, chan = creg_;
        bool ready = false;
        if (guard != 0)
            ready = disableChannel(chan);
        bool fired = false;
        if (ready && readWord(wptr_) == noneSelected()) {
            writeWord(wptr_, offset);
            fired = true;
        }
        areg_ = fired ? 1 : 0;
        breg_ = creg_;
        break;
      }

      case Op::DISS: {
        // A = offset, B = guard
        const Word offset = areg_, guard = breg_;
        bool fired = false;
        if (guard != 0 && readWord(wptr_) == noneSelected()) {
            writeWord(wptr_, offset);
            fired = true;
        }
        areg_ = fired ? 1 : 0;
        breg_ = creg_;
        break;
      }

      case Op::LMUL: {
        chargeCycles(cyc::lmul(shape_));
        const uint64_t r = static_cast<uint64_t>(breg_) *
                           static_cast<uint64_t>(areg_) + creg_;
        areg_ = shape_.truncate(r);
        breg_ = shape_.truncate(r >> bits);
        break;
      }

      case Op::NOT:
        areg_ = shape_.truncate(~areg_);
        break;

      case Op::XOR:
        areg_ = breg_ ^ areg_;
        breg_ = creg_;
        break;

      case Op::BCNT:
        areg_ = shape_.truncate(static_cast<uint64_t>(areg_) *
                                shape_.bytes);
        break;

      case Op::LSHR: {
        const Word count = areg_;
        const int n = static_cast<int>(
            std::min<Word>(count, static_cast<Word>(2 * bits)));
        chargeCycles(cyc::longShift(static_cast<Word>(n)));
        uint64_t v = (static_cast<uint64_t>(creg_) << bits) | breg_;
        v = n >= 2 * bits ? 0 : v >> n;
        areg_ = shape_.truncate(v);
        breg_ = shape_.truncate(v >> bits);
        break;
      }

      case Op::LSHL: {
        const Word count = areg_;
        const int n = static_cast<int>(
            std::min<Word>(count, static_cast<Word>(2 * bits)));
        chargeCycles(cyc::longShift(static_cast<Word>(n)));
        uint64_t v = (static_cast<uint64_t>(creg_) << bits) | breg_;
        v = n >= 2 * bits ? 0 : v << n;
        if (bits < 32)
            v &= (uint64_t{1} << (2 * bits)) - 1;
        areg_ = shape_.truncate(v);
        breg_ = shape_.truncate(v >> bits);
        break;
      }

      case Op::LSUM: {
        const uint64_t r = static_cast<uint64_t>(breg_) + areg_ +
                           (creg_ & 1);
        areg_ = shape_.truncate(r);
        breg_ = shape_.truncate(r >> bits) & 1;
        break;
      }

      case Op::LSUB: {
        const int64_t r = shape_.toSigned(breg_) -
                          shape_.toSigned(areg_) -
                          static_cast<int64_t>(creg_ & 1);
        if (overflows(shape_, r))
            setError();
        areg_ = shape_.truncate(static_cast<uint64_t>(r));
        break;
      }

      case Op::RUNP: {
        const Word w = areg_;
        pop();
        scheduleProcess(w);
        break;
      }

      case Op::XWORD: {
        // A = sign-bit power of two, B = part-word value
        const Word power = areg_;
        const Word mask = shape_.truncate(2 * power - 1);
        Word v = breg_ & mask;
        if (v & power)
            v = shape_.truncate(v | ~mask);
        areg_ = v;
        breg_ = creg_;
        break;
      }

      case Op::SB:
        writeByte(areg_, static_cast<uint8_t>(breg_ & 0xFF));
        pop();
        pop();
        break;

      case Op::GAJW: {
        const Word t = areg_;
        areg_ = wptr_;
        wptr_ = shape_.wordAlign(t);
        break;
      }

      case Op::SAVEL:
        writeWord(shape_.index(shape_.wordAlign(areg_), 0), fptr_[1]);
        writeWord(shape_.index(shape_.wordAlign(areg_), 1), bptr_[1]);
        pop();
        break;

      case Op::SAVEH:
        writeWord(shape_.index(shape_.wordAlign(areg_), 0), fptr_[0]);
        writeWord(shape_.index(shape_.wordAlign(areg_), 1), bptr_[0]);
        pop();
        break;

      case Op::WCNT: {
        const Word p = areg_;
        creg_ = breg_;
        breg_ = static_cast<Word>(shape_.byteSelect(p));
        areg_ = shape_.truncate(static_cast<uint64_t>(
            shape_.toSigned(p) >> shape_.byteSelectBits));
        break;
      }

      case Op::SHR: {
        const Word count = areg_;
        const int n = static_cast<int>(
            std::min<Word>(count, static_cast<Word>(2 * bits)));
        chargeCycles(cyc::shift(static_cast<Word>(n)));
        areg_ = n >= bits ? 0 : shape_.truncate(breg_ >> n);
        breg_ = creg_;
        break;
      }

      case Op::SHL: {
        const Word count = areg_;
        const int n = static_cast<int>(
            std::min<Word>(count, static_cast<Word>(2 * bits)));
        chargeCycles(cyc::shift(static_cast<Word>(n)));
        areg_ = n >= bits
                    ? 0
                    : shape_.truncate(static_cast<uint64_t>(breg_)
                                      << n);
        breg_ = creg_;
        break;
      }

      case Op::MINT:
        push(shape_.mostNeg);
        break;

      case Op::ALT:
        wsWrite(wptr_, ws::state, enabling());
        break;

      case Op::ALTWT:
        writeWord(wptr_, noneSelected());
        if (wsRead(wptr_, ws::state) == readyAlt())
            break;
        chargeCycles(12); // 17 total on the waiting path
        wsWrite(wptr_, ws::state, waitingAlt());
        descheduleCurrent(true);
        break;

      case Op::ALTEND:
        iptr_ = shape_.truncate(iptr_ + readWord(wptr_));
        flushFetchBuffer();
        break;

      case Op::AND:
        areg_ = breg_ & areg_;
        breg_ = creg_;
        break;

      case Op::ENBT: {
        // A = guard, B = time
        const Word guard = areg_, t = breg_;
        if (guard != 0) {
            const Word tlink = wsRead(wptr_, ws::tlink);
            if (tlink == timeNotSet()) {
                wsWrite(wptr_, ws::tlink, timeSet());
                wsWrite(wptr_, ws::time, t);
            } else if (shape_.toSigned(shape_.truncate(
                           t - wsRead(wptr_, ws::time))) < 0) {
                wsWrite(wptr_, ws::time, t); // earlier deadline
            }
        }
        breg_ = creg_;
        break;
      }

      case Op::ENBC: {
        // A = guard, B = channel
        const Word guard = areg_, chan = breg_;
        if (guard != 0)
            enableChannel(chan);
        breg_ = creg_;
        break;
      }

      case Op::ENBS:
        if (areg_ != 0)
            wsWrite(wptr_, ws::state, readyAlt());
        break;

      case Op::MOVE: {
        // A = count, B = destination, C = source
        const Word count = areg_, dst = breg_, src = creg_;
        chargeCycles(cyc::move(shape_, count));
        lastInstrInterruptible_ = true;
        copyMessage(dst, src, count);
        pop();
        pop();
        pop();
        break;
      }

      case Op::OR:
        areg_ = breg_ | areg_;
        breg_ = creg_;
        break;

      case Op::CSNGL: {
        // A = lo, B = hi: check the pair is a sign-extended single
        const Word expect = shape_.isNeg(areg_) ? shape_.mask : 0;
        if (breg_ != expect)
            setError();
        breg_ = creg_;
        break;
      }

      case Op::CCNT1:
        // A = limit, B = count: error if count == 0 or count > limit
        if (breg_ == 0 || breg_ > areg_)
            setError();
        areg_ = breg_;
        breg_ = creg_;
        break;

      case Op::TALT:
        wsWrite(wptr_, ws::state, enabling());
        wsWrite(wptr_, ws::tlink, timeNotSet());
        break;

      case Op::LDIFF: {
        const uint64_t bb = breg_, aa = areg_, borrow = creg_ & 1;
        const uint64_t r = bb - aa - borrow;
        areg_ = shape_.truncate(r);
        breg_ = (bb < aa + borrow) ? 1 : 0;
        break;
      }

      case Op::STHB:
        bptr_[0] = shape_.wordAlign(areg_);
        pop();
        break;

      case Op::TALTWT: {
        writeWord(wptr_, noneSelected());
        lastInstrInterruptible_ = true;
        if (wsRead(wptr_, ws::state) == readyAlt())
            break;
        const Word tlink = wsRead(wptr_, ws::tlink);
        if (tlink == timeSet()) {
            const Word t = wsRead(wptr_, ws::time);
            if (timeAfter(pri_, shape_.truncate(t + 1))) {
                wsWrite(wptr_, ws::state, readyAlt());
                break;
            }
            // queue on the timer list until the earliest deadline
            wsWrite(wptr_, ws::time, shape_.truncate(t + 1));
            timerInsert(pri_, wptr_, shape_.truncate(t + 1));
        }
        chargeCycles(10);
        wsWrite(wptr_, ws::state, waitingAlt());
        descheduleCurrent(true);
        break;
      }

      case Op::SUM:
        areg_ = shape_.truncate(breg_ + areg_);
        breg_ = creg_;
        break;

      case Op::MUL: {
        chargeCycles(cyc::mul(shape_));
        const int64_t r = shape_.toSigned(breg_) * shape_.toSigned(areg_);
        if (overflows(shape_, r))
            setError();
        areg_ = shape_.truncate(static_cast<uint64_t>(r));
        breg_ = creg_;
        break;
      }

      case Op::STTIMER:
        timerBase_ = time_;
        timerOffset_[0] = areg_;
        timerOffset_[1] = areg_;
        timersRunning_ = true;
        pop();
        break;

      case Op::STOPERR:
        if (errorFlag_)
            descheduleCurrent(true);
        break;

      case Op::CWORD: {
        // A = sign-bit power of two, B = value: error unless value
        // representable in the part word
        const int64_t a = shape_.toSigned(areg_);
        const int64_t v = shape_.toSigned(breg_);
        if (v >= a || v < -a)
            setError();
        areg_ = breg_;
        breg_ = creg_;
        break;
      }

      case Op::CLRHALTERR:
        haltOnError_ = false;
        break;

      case Op::SETHALTERR:
        haltOnError_ = true;
        break;

      case Op::TESTHALTERR:
        push(haltOnError_ ? 1 : 0);
        break;

      case Op::DUP:
        push(areg_);
        break;
    }
}

} // namespace transputer::core
