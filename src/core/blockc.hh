/**
 * @file
 * The block-compiler execution tier (see DESIGN.md "Block compiler").
 *
 * Sits above core/exec.cc's fused loop in the tier ladder:
 *
 *   executeOneSlow  ->  executePredecoded/runFused  ->  superblocks
 *
 * Hot predecoded regions (heat is sampled where the dispatch loop and
 * the fused loop's back-edges land) are compiled into superblocks:
 * arrays of superop steps (isa/superop.hh), each binding one chain --
 * prefix chain folded into the operand at compile time -- to a
 * specialized handler, with adjacent chains fused where a peephole
 * rule matches.  The ThreadedBackend dispatches the steps with
 * computed gotos, so the per-instruction decode/branch cost of the
 * interpreter disappears.
 *
 * Bit-faithfulness contract (obs::sameArchitectural is the oracle):
 *   - every step retires its chain's exact counters and cycle charges
 *     in the interpreter's order;
 *   - every chain emulates the predecode cache's lookup: the global
 *     hit/miss/invalidation counters are architectural, so the block
 *     tier performs (and counts) the same slot transitions the
 *     interpreter would -- a refill is taken from the compiled step
 *     image, which is valid precisely when the chain's write
 *     generations still match their compile-time values;
 *   - a superblock only runs chains the interpreter would run: the
 *     event/horizon bound and the dispatch budget are checked before
 *     every chain (fused heads pre-check a conservative worst case
 *     and fall back to per-chain solo execution near a boundary);
 *   - anything the block cannot prove -- a stale write generation
 *     (self-modifying store, link DMA), a timeslice rotation, an
 *     error halt, a dynamic branch out -- deopts: the block exits at
 *     a chain boundary with all state spilled, and the interpreter
 *     continues exactly where the tier-off run would be.
 *
 * Nothing architectural lives in a superblock; dropping any block (or
 * the whole cache) at any moment is always correct.  Snapshots never
 * serialize compiled blocks: restore invalidates the cache wholesale
 * and lets execution re-heat from the restored memory image (only the
 * obs::BlockStats counters round-trip, like the predecode cache's).
 */

#ifndef TRANSPUTER_CORE_BLOCKC_HH
#define TRANSPUTER_CORE_BLOCKC_HH

#include <array>
#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "core/icache.hh"
#include "isa/superop.hh"
#include "mem/memory.hh"
#include "obs/counters.hh"

namespace transputer::core
{

class Transputer;

namespace blockc
{

/** Why a superblock execution ended.  Mirrors obs::kBlockDeoptNames. */
enum class Deopt : uint8_t
{
    Bound = 0,  ///< local time reached the event/horizon bound
    Budget,     ///< per-dispatch instruction budget exhausted
    GuardStale, ///< code bytes changed under the block
    Deschedule, ///< timeslice rotation / deschedule left the block
    Halt,       ///< error flag with halt-on-error set
    BranchOut,  ///< dynamic branch left the compiled region
    End,        ///< ran off the compiled tail
    Entry,      ///< stale at entry; nothing executed
    kCount
};

static_assert(static_cast<size_t>(Deopt::kCount) == obs::kBlockDeopts,
              "Deopt enum and obs deopt histogram must match");

/**
 * One superop step: a predecoded chain (an icache entry image taken
 * at compile time) bound to a handler kind.  Member steps of a fused
 * group keep their solo kind in `kind == solo`; only the head step's
 * `kind` is the fused superop, and a backend near a bound/budget
 * boundary re-dispatches the members through `solo`.
 */
struct Step
{
    Word tag = 0;       ///< chain start address
    Word next = 0;      ///< tag + length, truncated (fall-through)
    Word operand = 0;   ///< folded operand
    Word aux = 0;       ///< kind-specific (folded constant, binop op)
    int64_t sop = 0;    ///< operand, sign-extended at compile time
    uint32_t slot = 0;  ///< icache slot: tag & the icache index mask
    uint32_t gidx = 0;  ///< generation slot of the first byte
    uint32_t gidx2 = 0; ///< generation slot of the last byte
    uint32_t gen = 0;   ///< write generation at compile time
    uint32_t gen2 = 0;
    uint8_t length = 0; ///< bytes, including prefixes
    uint8_t pfixes = 0;
    uint8_t nfixes = 0;
    uint8_t fn = 0;     ///< final isa::Fn
    uint8_t flags = 0;  ///< isa::pflag:: bits
    bool offChip = false;
    isa::superop::Kind kind = isa::superop::Kind::kCount;
    isa::superop::Kind solo = isa::superop::Kind::kCount;
    /** Worst-case cycles of the fused group minus its last chain
     *  (prefixes, base costs, memory waits, off-chip fetches): the
     *  fused head runs only when the bound admits this much. */
    uint8_t groupPreCost = 0;
};

/** A compiled superblock. */
struct Superblock
{
    Word entry = 0;
    bool valid = false;
    /**
     * Every step's icache slot held that step's chain on the last
     * full pass and no fill anywhere has happened since (missFence):
     * slot checks are provably hits, so the backend banks them
     * without touching the entry array.
     */
    bool primed = false;
    /** All step slots are distinct, so a full pass can prove every
     *  slot holds its step's chain (aliasing steps thrash one slot
     *  and can never all be resident at once). */
    bool primeable = false;
    bool loops = false; ///< has a back-edge to entry
    uint16_t nsteps = 0;
    uint64_t missFence = 0; ///< icache miss count when primed was set
    /** Steps whose slot held their chain during recent executions
     *  (bit per step), valid while no foreign fill intervened
     *  (visitFence).  Full coverage upgrades the block to primed. */
    uint64_t visited = 0;
    uint64_t visitFence = 0;
    std::vector<Step> steps;

    /** Per-step cumulative retire accounting: row k holds the sums
     *  over steps [0, k) of each chain's function counts (prefixes
     *  under PFIX/NFIX) and byte lengths.  The interpreter charges
     *  these per instruction; the block tier adds the difference of
     *  two rows when a linear sweep [first, past-last) ends, so the
     *  per-chain counter traffic in the hot loop collapses to one
     *  flush per lap or exit. */
    struct CumRow
    {
        std::array<uint16_t, 16> fn{};
        uint16_t len = 0;
    };
    std::vector<CumRow> cum; ///< nsteps + 1 rows

    /** Write generations of every 64-byte block holding code of this
     *  superblock, at compile time.  All current <=> no byte of the
     *  compiled region has been stored to since compilation. */
    struct Guard
    {
        uint32_t gidx = 0;
        uint32_t gen = 0;
    };
    static constexpr size_t kMaxGuards = 8;
    uint8_t nguards = 0;
    std::array<Guard, kMaxGuards> guards{};

    bool
    guardsOk(const uint32_t *gens) const
    {
        for (size_t i = 0; i < nguards; ++i)
            if (gens[guards[i].gidx] != guards[i].gen)
                return false;
        return true;
    }
};

/**
 * Backend interface: turns a compiled Superblock into something
 * executable.  The threaded backend interprets the step array with
 * computed gotos; a native template-splat backend (ROADMAP's 10x
 * target) would bind `Superblock` to emitted host code in prepare()
 * and jump to it in run() -- the compiler, cache, deopt contract and
 * statistics are backend-independent.
 */
class BlockBackend
{
  public:
    virtual ~BlockBackend() = default;
    virtual const char *name() const = 0;

    /** Bind backend state to a freshly compiled block (e.g. emit
     *  native code).  Called once per compile, before any run(). */
    virtual void prepare(Superblock &sb) = 0;

    /**
     * Execute `sb` from its entry (the CPU's iptr must equal
     * sb.entry, state Running, oreg 0).  Retires at most `budget`
     * chains and never starts a chain with the local clock past
     * `bound`.  Returns the chains retired, with `why` set to the
     * exit reason; on return all CPU state is spilled and consistent
     * at a chain boundary.
     */
    virtual int run(Transputer &cpu, Superblock &sb, Tick bound,
                    int budget, Deopt &why) = 0;
};

/** The computed-goto step interpreter (the default backend). */
class ThreadedBackend final : public BlockBackend
{
  public:
    const char *name() const override { return "threaded"; }
    void prepare(Superblock &) override {}
    int run(Transputer &cpu, Superblock &sb, Tick bound, int budget,
            Deopt &why) override;

  private:
    template <bool Primed>
    static int exec(Transputer &cpu, Superblock &sb, Tick bound,
                    int budget, Deopt &why);
};

/**
 * Per-transputer superblock cache: a direct-mapped block table plus a
 * heat table that promotes entry points once they have been reached
 * often enough.  Compilation failures are negatively cached so cold
 * or uncompilable addresses are not re-walked on every visit.
 */
class BlockCache
{
  public:
    static constexpr size_t kBlocks = 256;      ///< block table slots
    static constexpr size_t kHeatSlots = 1024;  ///< heat table slots
    static constexpr uint16_t kHotThreshold = 12; ///< visits to compile
    static constexpr uint16_t kNoCompile = 0xFFFF; ///< negative cache
    static constexpr size_t kMaxSteps = 64;     ///< per superblock
    static constexpr size_t kMinSteps = 3;      ///< else not worth it

    /** The valid superblock entered at iptr, or nullptr. */
    Superblock *
    find(Word iptr)
    {
        Superblock &sb = blocks_[blockIndex(iptr)];
        return (sb.valid && sb.entry == iptr) ? &sb : nullptr;
    }

    /**
     * Count a visit to a potential entry point.  @return true when
     * the address just crossed the promotion threshold and the caller
     * should compile it now.
     */
    bool
    heat(Word iptr)
    {
        const size_t i = heatIndex(iptr);
        if (heatTag_[i] != iptr) {
            heatTag_[i] = iptr;
            heatCount_[i] = 1;
            return false;
        }
        if (heatCount_[i] >= kHotThreshold)
            return false; // compiled already, or negatively cached
        return ++heatCount_[i] >= kHotThreshold;
    }

    /** True if a valid block exists here or the address just became
     *  hot (used by the fused loop to hand back-edges to this tier). */
    bool
    wantsEntry(Word iptr)
    {
        return find(iptr) != nullptr || heat(iptr);
    }

    /**
     * Compile a superblock starting at `entry` and install it (also
     * evicting whatever aliased its table slot).  @return the block,
     * or nullptr when the region is not worth compiling (the address
     * is then negatively cached until its heat slot is recycled).
     */
    Superblock *compile(mem::Memory &mem, const uint32_t *gens,
                        size_t icache_mask, const WordShape &s,
                        int external_waits, Word entry,
                        BlockBackend &backend);

    /** Reset an address's heat without compiling (promotion was
     *  declined): it must cross the threshold again before the next
     *  attempt, by which time the evidence may have changed. */
    void
    cool(Word iptr)
    {
        const size_t i = heatIndex(iptr);
        if (heatTag_[i] == iptr)
            heatCount_[i] = 0;
    }

    /** Demote one block (stale guards, self-modifying code). */
    void
    invalidate(Superblock &sb)
    {
        sb.valid = false;
        sb.primed = false;
        ++stats_.invalidations;
        // let the region re-heat: a recompile picks up the new bytes
        const size_t i = heatIndex(sb.entry);
        if (heatTag_[i] == sb.entry)
            heatCount_[i] = 0;
    }

    /** Drop every compiled block and all heat (snapshot restore). */
    void
    invalidateAll()
    {
        for (Superblock &sb : blocks_) {
            sb.valid = false;
            sb.primed = false;
        }
        heatTag_.fill(~Word{0});
        heatCount_.fill(0);
    }

    obs::BlockStats &stats() { return stats_; }
    const obs::BlockStats &stats() const { return stats_; }

    /** Host bytes of the cache itself plus every compiled block's
     *  step and cumulative-count arrays (scale accounting). */
    size_t
    footprintBytes() const
    {
        size_t n = sizeof(*this);
        for (const Superblock &sb : blocks_) {
            n += sb.steps.capacity() * sizeof(Step);
            n += sb.cum.capacity() * sizeof(Superblock::CumRow);
        }
        return n;
    }

    /** Overwrite the statistics with snapshotted values (src/snap). */
    void restoreStats(const obs::BlockStats &s) { stats_ = s; }

  private:
    static size_t
    blockIndex(Word iptr)
    {
        return static_cast<size_t>(iptr ^ (iptr >> 8)) & (kBlocks - 1);
    }

    static size_t
    heatIndex(Word iptr)
    {
        return static_cast<size_t>(iptr ^ (iptr >> 10)) &
               (kHeatSlots - 1);
    }

    std::array<Superblock, kBlocks> blocks_{};
    std::array<Word, kHeatSlots> heatTag_{};
    std::array<uint16_t, kHeatSlots> heatCount_{};
    obs::BlockStats stats_;
};

} // namespace blockc

} // namespace transputer::core

#endif // TRANSPUTER_CORE_BLOCKC_HH
