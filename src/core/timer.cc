/**
 * @file
 * The two timers (paper section 2.2.2).
 *
 * Each priority level has an incrementing clock: the high-priority
 * clock ticks every microsecond, the low-priority clock every 64
 * microseconds.  Time values are full modular words, compared with
 * the signed difference (AFTER).  Processes performing a delayed
 * input are held on a per-priority timer queue, a memory-linked list
 * through the TLink.s workspace slots ordered by wake-up time, whose
 * head pointer lives in the reserved TPtrLoc words.  Expiry is driven
 * by a single pending event on the simulation queue.
 */

#include <algorithm>

#include "core/transputer.hh"

namespace transputer::core
{

namespace
{

constexpr Tick usPerTick0 = 1;   ///< high-priority clock: 1 us
constexpr Tick usPerTick1 = 64;  ///< low-priority clock: 64 us

Tick
usPerTickOf(int pri)
{
    return pri == 0 ? usPerTick0 : usPerTick1;
}

} // namespace

Word
Transputer::clockAt(int pri, Tick t) const
{
    if (!timersRunning_)
        return timerOffset_[pri];
    const Tick elapsed_us = (t - timerBase_) / ticksPerUs;
    return shape_.truncate(timerOffset_[pri] +
                           static_cast<uint64_t>(
                               elapsed_us / usPerTickOf(pri)));
}

Tick
Transputer::tickFor(int pri, Word tv) const
{
    const Word now_clock = clockAt(pri, time_);
    const int64_t delta =
        shape_.toSigned(shape_.truncate(tv - now_clock));
    if (delta <= 0)
        return time_;
    const Tick per = usPerTickOf(pri) * ticksPerUs;
    const Tick ticks_now = (time_ - timerBase_) / per;
    return timerBase_ + (ticks_now + delta) * per;
}

bool
Transputer::timeAfter(int pri, Word tv) const
{
    const Word clock = clockAt(pri, time_);
    return shape_.toSigned(shape_.truncate(clock - tv)) >= 0;
}

void
Transputer::timerInsert(int pri, Word wptr, Word tv)
{
    ++ctrs_.timerWaits;
    trc(obs::Ev::WaitTimer, wptr | static_cast<Word>(pri), tv);
    const Word head_addr = mem_.tptrLocAddr(pri);
    const Word now_clock = clockAt(pri, time_);
    const int64_t key = shape_.toSigned(shape_.truncate(tv - now_clock));

    Word prev = notProcess();
    Word cur = readWord(head_addr);
    while (cur != notProcess()) {
        const Word cur_tv = wsRead(cur, ws::time);
        const int64_t cur_key =
            shape_.toSigned(shape_.truncate(cur_tv - now_clock));
        if (key < cur_key)
            break;
        prev = cur;
        cur = wsRead(cur, ws::tlink);
    }
    wsWrite(wptr, ws::tlink, cur);
    if (prev == notProcess())
        writeWord(head_addr, wptr);
    else
        wsWrite(prev, ws::tlink, wptr);
    armTimerEvent();
}

void
Transputer::timerRemove(int pri, Word wptr)
{
    const Word head_addr = mem_.tptrLocAddr(pri);
    Word prev = notProcess();
    Word cur = readWord(head_addr);
    while (cur != notProcess()) {
        const Word next = wsRead(cur, ws::tlink);
        if (cur == wptr) {
            if (prev == notProcess())
                writeWord(head_addr, next);
            else
                wsWrite(prev, ws::tlink, next);
            wsWrite(wptr, ws::tlink, timeNotSet());
            armTimerEvent();
            return;
        }
        prev = cur;
        cur = next;
    }
    // not on the queue (already expired): nothing to do
}

void
Transputer::timerExpire()
{
    timerEvent_ = sim::invalidEventId;
    // when the CPU is idle its local clock lags the event queue;
    // expiry happens in global time
    time_ = std::max(time_, queue_->now());
    for (int pri = 0; pri < 2; ++pri) {
        const Word head_addr = mem_.tptrLocAddr(pri);
        Word head = readWord(head_addr);
        while (head != notProcess() &&
               timeAfter(pri, wsRead(head, ws::time))) {
            const Word next = wsRead(head, ws::tlink);
            writeWord(head_addr, next);
            wsWrite(head, ws::tlink, timeNotSet());
            ++ctrs_.timerWakes;
            const Word st = wsRead(head, ws::state);
            if (st == waitingAlt()) {
                // a timer-ALT waiter: make it ready
                wsWrite(head, ws::state, readyAlt());
                scheduleProcess(head | static_cast<Word>(pri));
            } else {
                // a plain delayed input (tin)
                scheduleProcess(head | static_cast<Word>(pri));
            }
            head = readWord(head_addr);
        }
    }
    armTimerEvent();
}

void
Transputer::armTimerEvent()
{
    Tick earliest = maxTick;
    for (int pri = 0; pri < 2; ++pri) {
        const Word head = mem_.readWord(mem_.tptrLocAddr(pri));
        if (head == notProcess())
            continue;
        const Word tv = mem_.readWord(shape_.index(head, ws::time));
        earliest = std::min(earliest, tickFor(pri, tv));
    }
    if (timerEvent_ != sim::invalidEventId) {
        queue_->cancel(timerEvent_);
        timerEvent_ = sim::invalidEventId;
    }
    if (earliest == maxTick)
        return;
    // clamp an already-passed deadline to the CPU's architectural
    // time, not the queue clock: the local clock is never behind the
    // queue on any path that arms the timer, and the architectural
    // time is identical in serial and shard-parallel runs (the queue
    // clock depends on how execution was batched)
    timerEvent_ = queue_->schedule(
        std::max(earliest, time_),
        sim::EventKey{actorId_, sim::chanTimer, ++selfSeq_},
        [this] { timerExpire(); });
}

} // namespace transputer::core
