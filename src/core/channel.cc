/**
 * @file
 * Channel communication (paper section 3.2.10).
 *
 * Internal channels are single memory words: NotProcess when idle,
 * otherwise the descriptor of the process waiting on them (whose
 * State.s workspace slot holds its buffer pointer, or an ALT state).
 * Communication happens when both processes are ready; the data is
 * copied from outputter to inputter and both proceed.  The in/out
 * instructions dispatch on the channel address, so the very same code
 * drives a link (external channel) through its ChannelPort.
 */

#include "core/transputer.hh"
#include "isa/cycles.hh"

namespace transputer::core
{

namespace cyc = transputer::isa::cycles;

int
Transputer::portIndexFor(Word chan_addr) const
{
    const Word a = shape_.wordAlign(chan_addr);
    for (int i = 0; i < 4; ++i) {
        if (a == mem_.linkOutAddr(i))
            return i;
        if (a == mem_.linkInAddr(i))
            return 4 + i;
    }
    return -1;
}

ChannelPort *
Transputer::portFor(Word chan_addr) const
{
    const int idx = portIndexFor(chan_addr);
    if (idx < 0)
        return nullptr;
    ChannelPort *p = idx < 4 ? outPorts_[idx] : inPorts_[idx - 4];
    if (!p)
        fatal("{}: channel #{} is a link address with no attached "
              "link", name_, hexWord(chan_addr));
    return p;
}

bool
Transputer::isEventChannel(Word chan_addr) const
{
    return shape_.wordAlign(chan_addr) == mem_.eventAddr();
}

void
Transputer::channelIn(Word count, Word chan, Word ptr)
{
    if (isEventChannel(chan)) {
        eventIn();
        return;
    }
    const int idx = portIndexFor(chan);
    if (idx >= 0) {
        ChannelPort *port = portFor(chan);
        ++ctrs_.chanLinkIn;
        chargeCycles(cyc::commSuspend);
        const Word w = wdesc();
        trc(obs::Ev::WaitChan, w, chan);
        descheduleCurrent(true);
        port->requestInput(w, ptr, count);
        return;
    }
    internalIn(count, chan, ptr);
}

void
Transputer::channelOut(Word count, Word chan, Word ptr)
{
    const int idx = portIndexFor(chan);
    if (idx >= 0) {
        ChannelPort *port = portFor(chan);
        ++ctrs_.chanLinkOut;
        chargeCycles(cyc::commSuspend);
        const Word w = wdesc();
        trc(obs::Ev::WaitChan, w, chan);
        descheduleCurrent(true);
        port->requestOutput(w, ptr, count);
        return;
    }
    internalOut(count, chan, ptr);
}

void
Transputer::internalIn(Word count, Word chan, Word ptr)
{
    ++ctrs_.chanInternalIn;
    const Word word = readWord(chan);
    if (word == notProcess()) {
        // first at the rendezvous: wait for the outputter
        chargeCycles(cyc::commSuspend);
        writeWord(chan, wdesc());
        wsWrite(wptr_, ws::state, ptr);
        trc(obs::Ev::WaitChan, wdesc(), chan);
        descheduleCurrent(true);
        return;
    }
    // an outputter is waiting; its buffer pointer is in State.s
    chargeCycles(cyc::commComplete(shape_, count));
    const Word other = shape_.wordAlign(word);
    const Word src = wsRead(other, ws::state);
    copyMessage(ptr, src, count);
    writeWord(chan, notProcess());
    trc(obs::Ev::Rendezvous, word, chan, count);
    scheduleProcess(word);
}

void
Transputer::internalOut(Word count, Word chan, Word ptr)
{
    ++ctrs_.chanInternalOut;
    const Word word = readWord(chan);
    if (word == notProcess()) {
        chargeCycles(cyc::commSuspend);
        writeWord(chan, wdesc());
        wsWrite(wptr_, ws::state, ptr);
        trc(obs::Ev::WaitChan, wdesc(), chan);
        descheduleCurrent(true);
        return;
    }
    const Word other = shape_.wordAlign(word);
    const Word st = wsRead(other, ws::state);
    if (st == enabling() || st == waitingAlt() || st == readyAlt()) {
        // the waiter is ALT-ing: mark its guard ready, leave our
        // descriptor in the channel, and wait for the actual input
        chargeCycles(cyc::commSuspend);
        writeWord(chan, wdesc());
        wsWrite(wptr_, ws::state, ptr);
        const Word their_wdesc = word;
        trc(obs::Ev::WaitChan, wdesc(), chan);
        descheduleCurrent(true);
        if (st == enabling()) {
            wsWrite(other, ws::state, readyAlt());
        } else if (st == waitingAlt()) {
            wsWrite(other, ws::state, readyAlt());
            scheduleProcess(their_wdesc);
        }
        return;
    }
    // a plain inputter is waiting; copy straight into its buffer
    chargeCycles(cyc::commComplete(shape_, count));
    const Word dst = st;
    copyMessage(dst, ptr, count);
    writeWord(chan, notProcess());
    trc(obs::Ev::Rendezvous, wdesc(), chan, count);
    scheduleProcess(word);
}

void
Transputer::copyMessage(Word dst, Word src, Word count)
{
    for (Word i = 0; i < count; ++i)
        writeByte(shape_.truncate(dst + i),
                  readByte(shape_.truncate(src + i)));
}

void
Transputer::enableChannel(Word chan)
{
    if (isEventChannel(chan)) {
        if (enableEvent())
            wsWrite(wptr_, ws::state, readyAlt());
        return;
    }
    const int idx = portIndexFor(chan);
    if (idx >= 0) {
        if (portFor(chan)->enableInput(wdesc()))
            wsWrite(wptr_, ws::state, readyAlt());
        return;
    }
    const Word word = readWord(chan);
    if (word == notProcess()) {
        writeWord(chan, wdesc());
    } else if (word != wdesc()) {
        // an outputter is already waiting on this channel
        wsWrite(wptr_, ws::state, readyAlt());
    }
}

bool
Transputer::disableChannel(Word chan)
{
    if (isEventChannel(chan))
        return disableEvent();
    const int idx = portIndexFor(chan);
    if (idx >= 0)
        return portFor(chan)->disableInput();
    const Word word = readWord(chan);
    if (word == wdesc()) {
        writeWord(chan, notProcess()); // we were the only registrant
        return false;
    }
    return word != notProcess(); // an outputter is waiting
}

void
Transputer::eventIn()
{
    if (eventPending_ > 0) {
        --eventPending_;
        chargeCycles(4);
        return;
    }
    chargeCycles(cyc::commSuspend);
    eventWaiter_ = wdesc();
    descheduleCurrent(true);
}

bool
Transputer::enableEvent()
{
    if (eventPending_ > 0)
        return true;
    eventAltWaiter_ = wdesc();
    return false;
}

bool
Transputer::disableEvent()
{
    // the pending count is consumed by the selected branch's input,
    // not here: another guard may have been selected instead
    eventAltWaiter_ = notProcess();
    return eventPending_ > 0;
}

} // namespace transputer::core
