#include "core/transputer.hh"

#include <algorithm>
#include <ostream>

#include "base/format.hh"
#include "core/blockc.hh"
#include "isa/cycles.hh"

namespace transputer::core
{

Transputer::Transputer(sim::EventQueue &queue, const Config &cfg,
                       std::string name)
    : name_(std::move(name)), cfg_(cfg), shape_(cfg.shape),
      queue_(&queue),
      mem_(cfg.shape, cfg.onchipBytes, cfg.externalBytes,
           cfg.externalWaits),
      icache_(mem_, cfg.icacheEntries),
      predecodeEnabled_(cfg.predecode),
      stepEvent_([](void *ctx) {
          static_cast<Transputer *>(ctx)->stepHandler();
      }, this)
{
    fptr_[0] = fptr_[1] = notProcess();
    bptr_[0] = bptr_[1] = notProcess();
    wptr_ = notProcess();
    eventWaiter_ = notProcess();
    eventAltWaiter_ = notProcess();
    // hardware reset leaves the channel control words empty
    for (int i = 0; i < 4; ++i) {
        mem_.writeWord(mem_.linkOutAddr(i), notProcess());
        mem_.writeWord(mem_.linkInAddr(i), notProcess());
    }
    mem_.writeWord(mem_.eventAddr(), notProcess());
    mem_.writeWord(mem_.tptrLocAddr(0), notProcess());
    mem_.writeWord(mem_.tptrLocAddr(1), notProcess());
    if (cfg.trace)
        setTraceEnabled(true);
    if (cfg.blockCompile)
        setBlockCompileEnabled(true); // no-op when the build can't
    if (cfg.flight)
        setFlightEnabled(true);
    if (cfg.profile)
        setProfileEnabled(true);
    if (cfg.timeseries)
        setTimeseriesEnabled(true);
}

void
Transputer::recordFlight(Tick when, obs::Ev ev, uint64_t a,
                         uint64_t b, uint32_t c)
{
    if (!obsFlight_) {
        flightBuf_ =
            std::make_unique<obs::TraceBuffer>(cfg_.flightDepth);
        obsFlight_ = flightBuf_.get();
    }
    obsFlight_->record(when, ev, a, b, c);
}

size_t
Transputer::footprintBytes() const
{
    // the dynamic side structures of one node: what actually scales
    // with the network size (the Transputer object itself is a fixed
    // ~2 KiB of registers, scheduler state and counters)
    size_t n = mem_.allocatedBytes();
    n += (mem_.pageCount() + 63) / 64 * sizeof(uint64_t); // dirty map
    n += icache_.footprintBytes();
    n += blockTierFootprint();
    if (traceBuf_)
        n += traceBuf_->footprintBytes();
    if (flightBuf_)
        n += flightBuf_->footprintBytes();
    if (prof_)
        n += prof_->footprintBytes();
    if (tseries_)
        n += tseries_->footprintBytes();
    return n;
}

Word
Transputer::wdesc() const
{
    if (wptr_ == notProcess())
        return notProcess();
    return wptr_ | static_cast<Word>(pri_);
}

void
Transputer::attachOutputPort(int link, ChannelPort *port)
{
    TRANSPUTER_ASSERT(link >= 0 && link < 4);
    outPorts_[link] = port;
}

void
Transputer::attachInputPort(int link, ChannelPort *port)
{
    TRANSPUTER_ASSERT(link >= 0 && link < 4);
    inPorts_[link] = port;
}

void
Transputer::boot(Word iptr, Word wptr, int pri)
{
    TRANSPUTER_ASSERT(wptr_ == notProcess(), "already booted");
    time_ = std::max(time_, queue_->now());
    iptr_ = iptr;
    wptr_ = shape_.wordAlign(wptr);
    pri_ = pri;
    areg_ = breg_ = creg_ = oreg_ = 0;
    // a boot ROM would execute sttimer; do it for the program
    timersRunning_ = true;
    timerBase_ = time_;
    timerOffset_[0] = timerOffset_[1] = 0;
    sliceStartCycles_ = static_cast<int64_t>(cycles_);
    flushFetchBuffer();
    state_ = CpuState::Running;
    ++ctrs_.processStarts;
    trc(obs::Ev::Run, wdesc());
    scheduleStep();
}

void
Transputer::addProcess(Word iptr, Word wptr, int pri)
{
    const Word w = shape_.wordAlign(wptr);
    wsWrite(w, ws::iptr, iptr);
    scheduleProcess(w | static_cast<Word>(pri));
}

void
Transputer::completeOutput(Word wdesc)
{
    scheduleProcess(wdesc);
}

void
Transputer::completeInput(Word wdesc)
{
    scheduleProcess(wdesc);
}

void
Transputer::altReady(Word wdesc)
{
    const Word w = shape_.wordAlign(wdesc);
    const Word st = wsRead(w, ws::state);
    if (st == readyAlt())
        return;
    wsWrite(w, ws::state, readyAlt());
    if (st == waitingAlt())
        scheduleProcess(wdesc);
}

void
Transputer::eventSignal()
{
    if (eventWaiter_ != notProcess()) {
        const Word w = eventWaiter_;
        eventWaiter_ = notProcess();
        scheduleProcess(w);
    } else if (eventAltWaiter_ != notProcess()) {
        const Word w = eventAltWaiter_;
        ++eventPending_;
        altReady(w);
    } else {
        ++eventPending_;
    }
}

Word
Transputer::clockReg(int pri) const
{
    return clockAt(pri, time_);
}

// ---------------------------------------------------------------------
// fault injection (src/fault)
// ---------------------------------------------------------------------

void
Transputer::stall(Tick until)
{
    if (state_ == CpuState::Halted)
        return;
    trc(obs::Ev::FaultStall, wdesc(), static_cast<uint64_t>(until));
    stallUntil_ = std::max(stallUntil_, until);
    // when running, the local clock at a keyed event's dispatch is
    // architectural (the CPU never batches past a pending event), so
    // pushing it forward is deterministic; when idle, wakeIfIdle
    // applies the floor at the next wake
    if (state_ == CpuState::Running)
        time_ = std::max(time_, until);
}

void
Transputer::kill()
{
    if (state_ == CpuState::Halted)
        return;
    trc(obs::Ev::FaultKill, wdesc());
    killed_ = true;
    state_ = CpuState::Halted;
    preemptPending_ = false;
    if (stepScheduled_) {
        if (!queue_->cancelStatic(stepEvent_))
            queue_->cancel(stepEvent_.id());
        stepScheduled_ = false;
    }
    if (timerEvent_ != sim::invalidEventId) {
        queue_->cancel(timerEvent_);
        timerEvent_ = sim::invalidEventId;
    }
    timersRunning_ = false;
}

// ---------------------------------------------------------------------
// checkpoint/restore (src/snap)
// ---------------------------------------------------------------------

CpuSnap
Transputer::exportSnap() const
{
    TRANSPUTER_ASSERT(!inExec_,
                      "snapshot from inside an instruction");
    CpuSnap s;
    s.iptr = iptr_;
    s.wptr = wptr_;
    s.areg = areg_;
    s.breg = breg_;
    s.creg = creg_;
    s.oreg = oreg_;
    s.pri = pri_;
    s.fptr[0] = fptr_[0];
    s.fptr[1] = fptr_[1];
    s.bptr[0] = bptr_[0];
    s.bptr[1] = bptr_[1];
    s.errorFlag = errorFlag_;
    s.haltOnError = haltOnError_;
    s.timersRunning = timersRunning_;
    s.timerBase = timerBase_;
    s.timerOffset[0] = timerOffset_[0];
    s.timerOffset[1] = timerOffset_[1];
    if (timerEvent_ != sim::invalidEventId) {
        sim::EventKey key;
        s.timerArmed =
            queue_->pendingInfo(timerEvent_, s.timerWhen, key);
        s.timerSeq = key.seq;
    }
    s.lowSaved = lowSaved_;
    s.lowDebtTicks = lowDebtTicks_;
    s.lastFetchWord = lastFetchWord_;
    s.lastFetchValid = lastFetchValid_;
    s.preemptPending = preemptPending_;
    s.hpReadyTick = hpReadyTick_;
    s.lastInstrStart = lastInstrStart_;
    s.lastInstrInterruptible = lastInstrInterruptible_;
    s.state = static_cast<uint8_t>(state_);
    s.killed = killed_;
    s.stallUntil = stallUntil_;
    s.time = time_;
    s.sliceStartCycles = sliceStartCycles_;
    if (stepScheduled_) {
        s.stepArmed = true;
        if (stepEvent_.pending()) {
            s.stepWhen = stepEvent_.scheduledAt();
            s.stepSeq = stepEvent_.scheduledKey().seq;
        } else {
            // a parallel run migrated the arm between queues as an
            // ordinary event; it kept the static event's id
            sim::EventKey key;
            const bool live =
                queue_->pendingInfo(stepEvent_.id(), s.stepWhen, key);
            TRANSPUTER_ASSERT(live,
                              "step arm neither static nor migrated");
            s.stepSeq = key.seq;
        }
    }
    s.eventPending = eventPending_;
    s.eventWaiter = eventWaiter_;
    s.eventAltWaiter = eventAltWaiter_;
    s.eventInAlt = eventInAlt_;
    s.selfSeq = selfSeq_;
    s.idleSince = idleSince_;
    s.ctrs = counters();
    return s;
}

void
Transputer::importSnap(const CpuSnap &s)
{
    // drop whatever this CPU had pending: restore replaces it (the
    // arm may be live as a migrated ordinary event after a parallel
    // run, hence the id-based fallback)
    if (stepScheduled_) {
        if (!queue_->cancelStatic(stepEvent_))
            queue_->cancel(stepEvent_.id());
        stepScheduled_ = false;
    }
    if (timerEvent_ != sim::invalidEventId) {
        queue_->cancel(timerEvent_);
        timerEvent_ = sim::invalidEventId;
    }
    iptr_ = s.iptr;
    wptr_ = s.wptr;
    areg_ = s.areg;
    breg_ = s.breg;
    creg_ = s.creg;
    oreg_ = s.oreg;
    pri_ = s.pri;
    fptr_[0] = s.fptr[0];
    fptr_[1] = s.fptr[1];
    bptr_[0] = s.bptr[0];
    bptr_[1] = s.bptr[1];
    errorFlag_ = s.errorFlag;
    haltOnError_ = s.haltOnError;
    timersRunning_ = s.timersRunning;
    timerBase_ = s.timerBase;
    timerOffset_[0] = s.timerOffset[0];
    timerOffset_[1] = s.timerOffset[1];
    lowSaved_ = s.lowSaved;
    lowDebtTicks_ = s.lowDebtTicks;
    lastFetchWord_ = s.lastFetchWord;
    lastFetchValid_ = s.lastFetchValid;
    repinFetchBuffer();
    inExec_ = false;
    preemptPending_ = s.preemptPending;
    hpReadyTick_ = s.hpReadyTick;
    lastInstrStart_ = s.lastInstrStart;
    lastInstrInterruptible_ = s.lastInstrInterruptible;
    state_ = static_cast<CpuState>(s.state);
    killed_ = s.killed;
    stallUntil_ = s.stallUntil;
    time_ = s.time;
    sliceStartCycles_ = s.sliceStartCycles;
    eventPending_ = s.eventPending;
    eventWaiter_ = s.eventWaiter;
    eventAltWaiter_ = s.eventAltWaiter;
    eventInAlt_ = s.eventInAlt;
    selfSeq_ = s.selfSeq;
    idleSince_ = s.idleSince;
    // counters: the hot members fold into counters() by assignment,
    // so splitting the saved totals back out makes an immediate
    // re-capture bit-identical
    ctrs_ = s.ctrs;
    instructions_ = s.ctrs.instructions;
    cycles_ = s.ctrs.cycles;
    icache_.invalidateAll();
    icache_.restoreStats(s.ctrs.icacheHits, s.ctrs.icacheMisses,
                         s.ctrs.icacheInvalidations);
    restoreBlockTier(s.ctrs.blockc);
    // re-arm the pending events with their exact original keys: the
    // continuation dispatches them in the same total order as the
    // uninterrupted run
    if (s.stepArmed) {
        stepScheduled_ = true;
        queue_->scheduleStatic(
            s.stepWhen,
            sim::EventKey{actorId_, sim::chanStep, s.stepSeq},
            stepEvent_);
    }
    if (s.timerArmed) {
        timerEvent_ = queue_->schedule(
            s.timerWhen,
            sim::EventKey{actorId_, sim::chanTimer, s.timerSeq},
            [this] { timerExpire(); });
    }
}

// ---------------------------------------------------------------------
// event-loop integration
// ---------------------------------------------------------------------

void
Transputer::scheduleStep()
{
    if (stepScheduled_)
        return;
    stepScheduled_ = true;
    queue_->scheduleStatic(
        std::max(time_, queue_->now()),
        sim::EventKey{actorId_, sim::chanStep, ++selfSeq_}, stepEvent_);
}

void
Transputer::stepHandler()
{
    stepScheduled_ = false;
    if (state_ != CpuState::Running)
        return;
    int batch = 0;
    while (state_ == CpuState::Running && batch < cfg_.maxBatch) {
        if (preemptPending_)
            serviceInterrupt();
        if (state_ != CpuState::Running)
            break;
        // yield once local time passes the earliest pending event
        // that can reach this CPU -- its own events bound it exactly,
        // while another node's can only act on it through a link,
        // whose delivery lead the queue's topology map credits
        // (EventQueue::nextTimeFor) -- or the queue's horizon, beyond
        // which events from other shards may still arrive; equality
        // still executes (other agents' step events at the same tick
        // would livelock us)
        const Tick bound =
            std::min(queue_->nextTimeFor(actorId_), queue_->horizon());
        if (time_ > bound)
            break;
        // chain-boundary observation point (see obsBoundaryFire):
        // oreg_ == 0 makes slow-path byte boundaries coincide with
        // the fast tiers' chain boundaries
        if (oreg_ == 0 &&
            (cycles_ >= profNextCycle_ || time_ >= tsNextTick_))
            obsBoundaryFire(obs::kTierPlain);
        // fused run: a kFast instruction can neither schedule nor
        // cancel an event nor raise a preemption, so the bound stays
        // valid and straight-line code executes back to back inside
        // this one dispatch
        bool fast = executeOne();
        ++batch;
        while (fast && state_ == CpuState::Running &&
               !preemptPending_ && batch < cfg_.maxBatch &&
               time_ <= bound) {
            // top tier: superblocks, entered whenever iptr lands on a
            // compiled entry (heating and compiling cold ones)
            batch += runBlocks(bound, cfg_.maxBatch - batch);
            if (state_ != CpuState::Running || preemptPending_ ||
                batch >= cfg_.maxBatch || time_ > bound)
                break;
            // bulk of the rest: the inlined fused loop; it stops at
            // instructions it does not inline -- or at a back-edge
            // onto a compiled block -- which the paths below handle
            // before re-entering
            batch += runFused(bound, cfg_.maxBatch - batch);
            if (state_ != CpuState::Running || preemptPending_ ||
                batch >= cfg_.maxBatch || time_ > bound)
                break;
            if (hasBlockAt(iptr_))
                continue; // enter the block; don't interpret its head
            if (oreg_ == 0 &&
                (cycles_ >= profNextCycle_ || time_ >= tsNextTick_))
                obsBoundaryFire(obs::kTierPlain);
            fast = executeOne();
            ++batch;
        }
    }
    if (state_ == CpuState::Running)
        scheduleStep();
}

void
Transputer::wakeIfIdle()
{
    if (state_ != CpuState::Idle)
        return;
    time_ = std::max({time_, queue_->now(), stallUntil_});
    // both ends of the idle span are architectural times (idleSince_
    // is the local clock at the idle transition; the wake lands at the
    // deterministic event time), so this total is serial/parallel
    // bit-identical
    ctrs_.idleTicks += time_ - idleSince_;
    state_ = CpuState::Running;
    pickNext();
    if (state_ == CpuState::Running)
        scheduleStep();
}

// ---------------------------------------------------------------------
// chain-boundary observation (src/obs: profiler + time-series)
// ---------------------------------------------------------------------

uint32_t
Transputer::runListDepth(int pri) const
{
    // raw reads (no cycle charges): observation must not perturb the
    // clock.  The walk is bounded so a corrupted link chain cannot
    // hang the sampler; depths past the cap saturate.
    constexpr uint32_t kMaxWalk = 256;
    uint32_t n = 0;
    Word w = fptr_[pri];
    if (w == notProcess())
        return 0;
    while (n < kMaxWalk) {
        ++n;
        if (w == bptr_[pri])
            break;
        w = mem_.readWord(shape_.index(w, ws::link));
    }
    return n;
}

obs::TsPoint
Transputer::tsCapture(Tick nominal)
{
    obs::TsPoint p;
    p.tick = nominal;
    p.instructions = instructions_;
    p.cycles = cycles_;
    p.icacheHits = icache_.hits();
    p.icacheMisses = icache_.misses();
    p.linkBytesOut = linkBytesOutLive_;
    p.linkBytesIn = linkBytesInLive_;
    p.processStarts = ctrs_.processStarts;
    p.timeslices = ctrs_.timeslices;
    p.idleTicks = ctrs_.idleTicks;
    p.qlo = runListDepth(1);
    p.qhi = runListDepth(0);
    // host-side block-tier fields (archOnly exports omit them)
    const obs::Counters c = counters();
    p.blockChains = c.blockc.chains;
    uint64_t deopts = 0;
    for (const uint64_t d : c.blockc.deopts)
        deopts += d;
    p.blockDeopts = deopts;
    return p;
}

void
Transputer::obsBoundaryFire(int tier)
{
    // Samples land on the boundary state: (wdesc, iptr) of the chain
    // about to execute, at the cycle count retired so far.  Catch-up
    // (a long chain or an idle span crossing several thresholds)
    // attributes every elapsed interval to the current boundary --
    // the deterministic analogue of a timer interrupt pinning all
    // missed ticks on the instruction that disabled it.
    if (profileOn_ && cycles_ >= profNextCycle_) {
        const uint64_t iv = prof_->interval();
        const uint64_t k = (cycles_ - profNextCycle_) / iv + 1;
        prof_->sample(wdesc(), iptr_, tier, k);
        profNextCycle_ += k * iv;
    }
    if (timeseriesOn_ && time_ >= tsNextTick_) {
        // one snapshot per crossing, stamped with the nominal tick it
        // is for; the skipped multiples (no boundary fell inside
        // them) are represented by the jump in nominal ticks
        tseries_->push(tsCapture(tsNextTick_));
        const Tick iv = tseries_->interval();
        tsNextTick_ += ((time_ - tsNextTick_) / iv + 1) * iv;
    }
}

void
Transputer::chargeCycles(int64_t n)
{
    cycles_ += static_cast<uint64_t>(n);
    time_ += n * cfg_.cyclePeriod;
}

void
Transputer::setError()
{
    errorFlag_ = true;
}

// ---------------------------------------------------------------------
// evaluation stack and memory helpers
// ---------------------------------------------------------------------

void
Transputer::push(Word v)
{
    creg_ = breg_;
    breg_ = areg_;
    areg_ = v;
}

Word
Transputer::pop()
{
    const Word v = areg_;
    areg_ = breg_;
    breg_ = creg_;
    return v;
}

Word
Transputer::readWord(Word addr)
{
    chargeCycles(mem_.accessWaits(addr));
    return mem_.readWord(addr);
}

void
Transputer::writeWord(Word addr, Word v)
{
    chargeCycles(mem_.accessWaits(addr));
    mem_.writeWord(addr, v);
}

uint8_t
Transputer::readByte(Word addr)
{
    chargeCycles(mem_.accessWaits(addr));
    return mem_.readByte(addr);
}

void
Transputer::writeByte(Word addr, uint8_t v)
{
    chargeCycles(mem_.accessWaits(addr));
    mem_.writeByte(addr, v);
}

Word
Transputer::wsRead(Word wptr, int slot)
{
    return readWord(shape_.index(wptr, slot));
}

void
Transputer::wsWrite(Word wptr, int slot, Word v)
{
    writeWord(shape_.index(wptr, slot), v);
}

// ---------------------------------------------------------------------
// scheduler (paper section 3.2.4, Figure 3)
// ---------------------------------------------------------------------

void
Transputer::enqueueProcess(Word wdesc)
{
    const int p = static_cast<int>(wdesc & 1);
    const Word w = shape_.wordAlign(wdesc);
    if (fptr_[p] == notProcess()) {
        fptr_[p] = w;
        bptr_[p] = w;
    } else {
        wsWrite(bptr_[p], ws::link, w);
        bptr_[p] = w;
    }
}

void
Transputer::scheduleProcess(Word wdesc)
{
    ++ctrs_.processStarts;
    // an external wake (link/timer completion) can land while the
    // local clock lags the queue; stamp with whichever is ahead so the
    // ring stays chronological
    trcAt(std::max(time_, queue_->now()), obs::Ev::Ready, wdesc);
    enqueueProcess(wdesc);
    const int p = static_cast<int>(wdesc & 1);
    if (state_ == CpuState::Idle) {
        wakeIfIdle();
    } else if (state_ == CpuState::Running && p == 0 && pri_ == 1 &&
               !preemptPending_) {
        preemptPending_ = true;
        // a wake caused by the CPU's own instruction (runp/startp of a
        // high-priority descriptor) is "ready" at CPU time; an
        // external wake (link/timer event) is ready at the event time.
        hpReadyTick_ = inExec_ ? time_ : queue_->now();
    }
}

void
Transputer::descheduleCurrent(bool save_iptr)
{
    TRANSPUTER_ASSERT(wptr_ != notProcess());
    if (save_iptr)
        wsWrite(wptr_, ws::iptr, iptr_);
    wptr_ = notProcess();
    pickNext();
}

void
Transputer::timesliceCheck()
{
    if (pri_ != 1 || wptr_ == notProcess())
        return;
    if (static_cast<int64_t>(cycles_) - sliceStartCycles_ <
        cfg_.timesliceCycles)
        return;
    if (fptr_[1] == notProcess())
        return; // nobody else to run
    // move to the back of the low-priority list
    ++ctrs_.timeslices;
    trc(obs::Ev::Timeslice, wptr_ | 1u);
    wsWrite(wptr_, ws::iptr, iptr_);
    enqueueProcess(wptr_ | 1u);
    wptr_ = notProcess();
    chargeCycles(isa::cycles::contextSwitch);
    pickNext();
}

void
Transputer::pickNext()
{
    TRANSPUTER_ASSERT(wptr_ == notProcess());
    // control moves to a different Iptr: the fetch buffer's word no
    // longer matches the instruction stream
    flushFetchBuffer();
    if (fptr_[0] != notProcess()) {
        const Word w = fptr_[0];
        fptr_[0] = (w == bptr_[0]) ? notProcess()
                                   : wsRead(w, ws::link);
        wptr_ = w;
        pri_ = 0;
        iptr_ = wsRead(w, ws::iptr);
        state_ = CpuState::Running;
        trc(obs::Ev::Run, wdesc());
        return;
    }
    if (lowSaved_) {
        restoreLowContext();
        return;
    }
    if (fptr_[1] != notProcess()) {
        const Word w = fptr_[1];
        fptr_[1] = (w == bptr_[1]) ? notProcess()
                                   : wsRead(w, ws::link);
        wptr_ = w;
        pri_ = 1;
        iptr_ = wsRead(w, ws::iptr);
        sliceStartCycles_ = static_cast<int64_t>(cycles_);
        state_ = CpuState::Running;
        trc(obs::Ev::Run, wdesc());
        return;
    }
    state_ = CpuState::Idle;
    idleSince_ = time_;
    trc(obs::Ev::Idle, 0);
}

void
Transputer::serviceInterrupt()
{
    preemptPending_ = false;
    if (pri_ != 1 || wptr_ == notProcess() || fptr_[0] == notProcess())
        return;
    // If the instruction that overlapped the wake was interruptible,
    // the architectural switch began at the wake point and the
    // displaced tail of the instruction is repaid when the
    // low-priority process resumes (paper section 3.2.4).
    Tick arch_switch_done;
    const Tick cp = cfg_.cyclePeriod;
    if (lastInstrInterruptible_ && hpReadyTick_ >= lastInstrStart_ &&
        hpReadyTick_ <= time_) {
        arch_switch_done =
            hpReadyTick_ + isa::cycles::switchLowToHigh * cp;
        lowDebtTicks_ += time_ - hpReadyTick_;
    } else {
        arch_switch_done = time_ + isa::cycles::switchLowToHigh * cp;
    }
    chargeCycles(isa::cycles::switchLowToHigh);
    preemptLatency_.add(
        static_cast<double>(arch_switch_done - hpReadyTick_) /
        static_cast<double>(cp));
    ++ctrs_.priorityInterrupts;
    const Word low = wdesc();
    saveLowContext();
    wptr_ = notProcess();
    pickNext();
    TRANSPUTER_ASSERT(pri_ == 0);
    trc(obs::Ev::Interrupt, wdesc(), low);
}

void
Transputer::saveLowContext()
{
    TRANSPUTER_ASSERT(!lowSaved_);
    writeWord(mem_.intSaveAddr(0), wdesc());
    writeWord(mem_.intSaveAddr(1), iptr_);
    writeWord(mem_.intSaveAddr(2), areg_);
    writeWord(mem_.intSaveAddr(3), breg_);
    writeWord(mem_.intSaveAddr(4), creg_);
    writeWord(mem_.intSaveAddr(5), oreg_);
    // the error flag is NOT part of the saved context: there is one
    // flag shared by both priority levels (like HaltOnError), so an
    // error raised -- or consumed by testerr -- at high priority must
    // stay visible after the return to low priority
    oreg_ = 0;
    lowSaved_ = true;
}

void
Transputer::restoreLowContext()
{
    TRANSPUTER_ASSERT(lowSaved_);
    lowSaved_ = false;
    const Word saved = readWord(mem_.intSaveAddr(0));
    wptr_ = shape_.wordAlign(saved);
    pri_ = 1;
    iptr_ = readWord(mem_.intSaveAddr(1));
    areg_ = readWord(mem_.intSaveAddr(2));
    breg_ = readWord(mem_.intSaveAddr(3));
    creg_ = readWord(mem_.intSaveAddr(4));
    oreg_ = readWord(mem_.intSaveAddr(5));
    chargeCycles(isa::cycles::switchHighToLow);
    // the repaid debt is the tail of an interrupted interruptible
    // instruction: a further high-priority wake landing inside it
    // must still see the low switch latency, not the whole tail
    if (lowDebtTicks_ > 0) {
        lastInstrStart_ = time_;
        lastInstrInterruptible_ = true;
        time_ += lowDebtTicks_;
        lowDebtTicks_ = 0;
    }
    // NB: the timeslice clock is NOT reset here -- the slice period
    // is wall-clock time, so time spent interrupted still counts
    // against the resumed process (otherwise frequent interrupts
    // would starve the other low-priority processes of rotation)
    state_ = CpuState::Running;
    trc(obs::Ev::Run, wdesc());
}

} // namespace transputer::core
