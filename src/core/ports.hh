/**
 * @file
 * The boundary between the CPU core and external channels.
 *
 * The paper (section 3.2.10): input message / output message use the
 * address of the channel to determine whether it is internal or
 * external, so one instruction sequence works for both.  When the CPU
 * decodes a reserved link (or event) address it forwards the request
 * to the attached ChannelPort instead of running the memory-word
 * protocol.  Link engines and peripherals implement this interface;
 * they complete transfers in simulated time and wake the process via
 * the owning Transputer's completion hooks.
 */

#ifndef TRANSPUTER_CORE_PORTS_HH
#define TRANSPUTER_CORE_PORTS_HH

#include "base/types.hh"

namespace transputer::core
{

/** CPU-side view of one direction of an external channel. */
class ChannelPort
{
  public:
    virtual ~ChannelPort() = default;

    /**
     * A process executed an output on this channel and has been
     * descheduled; transfer count bytes from memory at pointer, then
     * wake wdesc via Transputer::completeOutput().
     */
    virtual void requestOutput(Word wdesc, Word pointer, Word count) = 0;

    /**
     * A process executed an input on this channel and has been
     * descheduled; deposit count bytes at pointer, then wake wdesc
     * via Transputer::completeInput().
     */
    virtual void requestInput(Word wdesc, Word pointer, Word count) = 0;

    /**
     * ALT support: a process is enabling this (input) channel.
     * @return true if data is already waiting (guard ready now);
     *         otherwise remember wdesc and call
     *         Transputer::altReady(wdesc) when data arrives.
     */
    virtual bool enableInput(Word wdesc) = 0;

    /**
     * ALT support: the process is disabling this channel.
     * Clears any waiter registered by enableInput.
     * @return true if the guard is ready (data waiting).
     */
    virtual bool disableInput() = 0;

    /** resetch was executed on this channel. */
    virtual void reset() = 0;
};

} // namespace transputer::core

#endif // TRANSPUTER_CORE_PORTS_HH
