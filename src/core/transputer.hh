/**
 * @file
 * The transputer CPU core (paper section 3).
 *
 * Implements the I1 instruction set on the six-register machine of
 * Figure 2 (Wptr, Iptr, Oreg and the A/B/C evaluation stack), the
 * microcoded two-priority process scheduler of section 3.2.4 and
 * Figure 3, internal channels, the ALT mechanism, and the two
 * incrementing-clock timers of section 2.2.2.  External channels
 * (links and the event pin) are delegated to attached ChannelPorts.
 *
 * Timing: the CPU owns a local clock (in simulation ticks) advanced
 * by the per-instruction costs in isa/cycles.hh.  It participates in
 * the network's discrete-event co-simulation by executing batches of
 * instructions between queue events and never running past the next
 * pending event by more than one instruction; long instructions
 * (block move / message transfers) are interruptible, so a
 * high-priority wake during one is honoured from the wake point and
 * the displaced low-priority cycles are repaid on resumption -- this
 * is how the paper's 58-cycle latency bound arises.
 */

#ifndef TRANSPUTER_CORE_TRANSPUTER_HH
#define TRANSPUTER_CORE_TRANSPUTER_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "base/stats.hh"
#include "base/types.hh"
#include "isa/opcodes.hh"
#include "mem/memory.hh"
#include "core/icache.hh"
#include "core/ports.hh"
#include "obs/counters.hh"
#include "obs/profile.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "sim/event_queue.hh"

namespace transputer::core
{

namespace blockc
{
class BlockBackend;
class BlockCache;
class ThreadedBackend;
struct Superblock;
} // namespace blockc

/** Workspace slot offsets below Wptr (section 3.2.4). */
namespace ws
{
constexpr int iptr = -1;    ///< saved instruction pointer
constexpr int link = -2;    ///< next process on a scheduling list
constexpr int state = -3;   ///< ALT state / saved buffer pointer
constexpr int tlink = -4;   ///< timer queue link
constexpr int time = -5;    ///< timer wake-up time
} // namespace ws

/** Static configuration of one transputer part. */
struct Config
{
    WordShape shape = word32;      ///< 32-bit (T424) or 16-bit (T222)
    Word onchipBytes = 4096;       ///< T424: 4 KB on-chip RAM
    Word externalBytes = 0;        ///< off-chip RAM above on-chip
    int externalWaits = 3;         ///< extra cycles per off-chip access
    Tick cyclePeriod = 50;         ///< ns per processor cycle (20 MHz)
    int64_t timesliceCycles = 20480; ///< ~1 ms low-priority timeslice
    int maxBatch = 8192;           ///< instructions per event-loop turn
    bool predecode = true;         ///< use the predecoded instruction cache
    /** Compile hot predecoded regions into superblocks (core/blockc).
     *  Requires predecode; architecturally invisible, like the
     *  predecode cache itself.  Ignored (forced off) when the build
     *  disables the tier (TRANSPUTER_BLOCKC=OFF or no computed goto). */
    bool blockCompile = true;
    bool trace = false;            ///< record scheduler/channel/link events
    unsigned traceDepth = 16;      ///< log2 of the trace ring capacity
    /** Guest sampling profiler (src/obs/profile.hh): attribute one
     *  sample per profileInterval simulated cycles to the (Wdesc,
     *  Iptr) current at the next chain boundary.  Architecturally
     *  invisible and serial/parallel deterministic. */
    bool profile = false;
    uint64_t profileInterval = 4096; ///< cycles between samples
    /** Metrics time-series (src/obs/timeseries.hh): one cumulative
     *  counter snapshot per timeseriesInterval simulated ticks. */
    bool timeseries = false;
    Tick timeseriesInterval = 1'000'000; ///< ticks between snapshots
    unsigned timeseriesDepth = 8;  ///< log2 of the time-series ring
    /** Always-on flight recorder (src/obs/flight.hh): a small ring of
     *  recent scheduler/link/fault/deopt events kept for post-mortem
     *  dumps.  On by default; costs one filtered ring store per
     *  (already rare) traced event. */
    bool flight = true;
    unsigned flightDepth = 10;     ///< log2 of the flight ring
    /**
     * Slots in the predecoded-instruction cache (a power of two).
     * The default suits a busy standalone part; huge networks of
     * mostly-idle nodes shrink it (64 slots still covers a typical
     * occam inner loop) so 100k nodes fit in host RAM.  Purely an
     * acceleration structure: any size executes identically.
     */
    size_t icacheEntries = PredecodeCache::kDefaultEntries;
};

/** Execution state of the whole part. */
enum class CpuState
{
    Idle,    ///< no runnable process; waiting for an external wake
    Running, ///< executing instructions
    Halted,  ///< stopped by error with halt-on-error set
};

/**
 * Everything one CPU must save to resume bit-exactly (src/snap):
 * the register file, scheduler list heads, timer and event-pin state,
 * the local clock, and the exact (tick, seq) of its two pending event
 * arms (CPU step, timer expiry) so restore re-schedules them under
 * their original dispatch keys.  The memory image and the predecode
 * cache are NOT here: memory is serialized page-wise by the snapshot
 * layer, and predecoded chains are dropped and re-decoded on demand
 * (only their statistics, inside ctrs, are architectural).
 */
struct CpuSnap
{
    // register file (Figure 2) and scheduling lists (Figure 3)
    Word iptr = 0, wptr = 0;
    Word areg = 0, breg = 0, creg = 0, oreg = 0;
    int pri = 1;
    Word fptr[2] = {0, 0}, bptr[2] = {0, 0};
    bool errorFlag = false, haltOnError = false;

    // timers
    bool timersRunning = false;
    Tick timerBase = 0;
    Word timerOffset[2] = {0, 0};
    bool timerArmed = false;
    Tick timerWhen = 0;
    uint64_t timerSeq = 0;

    // interrupted low-priority context
    bool lowSaved = false;
    Tick lowDebtTicks = 0;

    // fetch buffer (the generation is re-pinned against the restored
    // memory image, which is byte-identical, so validity carries over)
    Word lastFetchWord = 0;
    bool lastFetchValid = false;

    // preemption bookkeeping
    bool preemptPending = false;
    Tick hpReadyTick = 0;
    Tick lastInstrStart = 0;
    bool lastInstrInterruptible = false;

    // event-loop state
    uint8_t state = 0; ///< CpuState
    bool killed = false;
    Tick stallUntil = 0;
    Tick time = 0;
    int64_t sliceStartCycles = 0;
    bool stepArmed = false;
    Tick stepWhen = 0;
    uint64_t stepSeq = 0;

    // event pin
    int eventPending = 0;
    Word eventWaiter = 0;
    Word eventAltWaiter = 0;
    bool eventInAlt = false;

    uint64_t selfSeq = 0; ///< step/timer key sequence counter
    Tick idleSince = 0;

    obs::Counters ctrs; ///< full counters() output at the snapshot
};

/**
 * One transputer: processor + memory + scheduler + timers, with up to
 * four links and an event pin attached via ChannelPorts.
 */
class Transputer
{
  public:
    Transputer(sim::EventQueue &queue, const Config &cfg,
               std::string name = "tp");
    ~Transputer(); // out of line: unique_ptr to forward-declared blockc

    const std::string &name() const { return name_; }
    const WordShape &shape() const { return shape_; }
    const Config &config() const { return cfg_; }
    mem::Memory &memory() { return mem_; }
    const mem::Memory &memory() const { return mem_; }
    sim::EventQueue &queue() { return *queue_; }

    /**
     * Re-home this CPU onto another event queue (shard-local
     * simulation, src/par).  Only legal between runs; pending events
     * must be migrated by the caller (EventQueue::extractPending).
     */
    void setQueue(sim::EventQueue &q) { queue_ = &q; }

    /** Deterministic identity used to order simultaneous events. */
    uint32_t actor() const { return actorId_; }
    void setActor(uint32_t id) { actorId_ = id; }

    /** @name Setup */
    ///@{
    /** Attach the output side of link n (0..3). */
    void attachOutputPort(int link, ChannelPort *port);
    /** Attach the input side of link n (0..3). */
    void attachInputPort(int link, ChannelPort *port);
    /** True if link n's input side has an attached wire. */
    bool
    hasInputPort(int link) const
    {
        return inPorts_[static_cast<size_t>(link)] != nullptr;
    }

    /**
     * Make (iptr, wptr) the current process and start executing.
     * Also starts the timers (as a boot ROM would via sttimer).
     */
    void boot(Word iptr, Word wptr, int pri = 1);

    /** Add a further ready process to a scheduling list. */
    void addProcess(Word iptr, Word wptr, int pri = 1);
    ///@}

    /** @name Link/peripheral completion hooks (called by ports) */
    ///@{
    /** An output transfer finished; wake the producing process. */
    void completeOutput(Word wdesc);
    /** An input transfer finished; wake the consuming process. */
    void completeInput(Word wdesc);
    /** Data arrived for a process ALT-waiting on an external channel. */
    void altReady(Word wdesc);
    /** Pulse the event pin (section 2.2.2's external stimulus). */
    void eventSignal();
    ///@}

    /** @name Fault injection (src/fault) */
    ///@{
    /**
     * Transient node stall: freeze the local clock forward to `until`
     * (no instructions issue in the gap).  Must be invoked from a
     * keyed event, where the local clock is architectural, so faulty
     * runs stay serial/parallel bit-identical.
     */
    void stall(Tick until);

    /**
     * Permanent node death: stop executing and cancel the node's
     * pending self-events.  Unlike an error halt the machine state is
     * simply abandoned mid-flight; attached link engines are silenced
     * separately (LinkEngine::setDead) so neighbours see stuck links.
     */
    void kill();
    bool killed() const { return killed_; }
    ///@}

    /** @name Observation */
    ///@{
    CpuState state() const { return state_; }
    bool idle() const { return state_ == CpuState::Idle; }
    bool halted() const { return state_ == CpuState::Halted; }
    Word areg() const { return areg_; }
    Word breg() const { return breg_; }
    Word creg() const { return creg_; }
    Word oreg() const { return oreg_; }
    Word iptr() const { return iptr_; }
    /** Word-aligned workspace pointer of the current process. */
    Word wptr() const { return wptr_; }
    /** Process descriptor (Wptr | priority) or NotProcess. */
    Word wdesc() const;
    int priority() const { return pri_; }
    bool errorFlag() const { return errorFlag_; }
    bool haltOnError() const { return haltOnError_; }
    Tick localTime() const { return time_; }
    uint64_t cycles() const { return cycles_; }
    uint64_t instructions() const { return instructions_; }
    Word notProcess() const { return shape_.mostNeg; }

    /** Dynamic per-opcode execution counts (for the MIPS bench). */
    const std::array<uint64_t, 16> &fnCounts() const { return ctrs_.fn; }

    /**
     * Snapshot of this node's performance counters (src/obs).  Link
     * byte totals live in the link engines; Network::counters adds
     * them in for whole-node views.  Defined in blockc.cc (it folds
     * the block-compiler statistics in).
     */
    obs::Counters counters() const;

    /**
     * Host bytes this node currently occupies in side structures:
     * backed memory pages, dirty bitmap, icache, block tier, and any
     * observability rings that were actually enabled.  Purely an
     * accounting view for the scale bench (bytes/node); never affects
     * simulation.  Defined in transputer.cc.
     */
    size_t footprintBytes() const;

    /**
     * Toggle event tracing at runtime.  The ring buffer is allocated
     * on first enable and kept (with its records) across disables so
     * exporters can read it after a run.  Tracing never perturbs
     * architectural state or event order.
     */
    void
    setTraceEnabled(bool on)
    {
        if (on && !traceBuf_)
            traceBuf_ =
                std::make_unique<obs::TraceBuffer>(cfg_.traceDepth);
        obsTrace_ = on ? traceBuf_.get() : nullptr;
    }
    bool traceEnabled() const { return obsTrace_ != nullptr; }
    /** The trace ring, or nullptr if tracing was never enabled. */
    const obs::TraceBuffer *traceBuffer() const { return traceBuf_.get(); }

    /** Record a link-level event (called by the link engines, which
     *  always run on the thread that owns this node). */
    void
    traceLink(obs::Ev ev, uint64_t a, uint64_t b = 0, uint32_t c = 0)
    {
#ifdef TRANSPUTER_OBS
        if (obsTrace_)
            obsTrace_->record(queue_->now(), ev, a, b, c);
        if (flightOn_ && obs::flightWorthy(ev))
            recordFlight(queue_->now(), ev, a, b, c);
#else
        (void)ev; (void)a; (void)b; (void)c;
#endif
    }

    /** One link byte moved through an attached engine (called by the
     *  engines, on the owning thread).  Feeds the time-series' link
     *  utilisation; architectural relative to chain boundaries, since
     *  engine events share this node's actor and dispatch in the
     *  deterministic total event order. */
    void noteLinkByteOut() { ++linkBytesOutLive_; }
    void noteLinkByteIn() { ++linkBytesInLive_; }
    uint64_t linkBytesOutLive() const { return linkBytesOutLive_; }
    uint64_t linkBytesInLive() const { return linkBytesInLive_; }

    /**
     * Toggle the guest sampling profiler at runtime.  Like the
     * tracer: the histogram is allocated on first enable and kept
     * across disables so exporters can read it after a run.  Sampling
     * is keyed off the simulated cycle counter, so it never perturbs
     * architectural state (tests/test_profile.cc).
     */
    void
    setProfileEnabled(bool on)
    {
        if (on && !prof_)
            prof_ = std::make_unique<obs::Profiler>(
                cfg_.profileInterval);
        if (on) {
            // next boundary at or after the next interval multiple
            const uint64_t iv = prof_->interval();
            profNextCycle_ = (cycles_ / iv + 1) * iv;
        } else {
            profNextCycle_ = ~uint64_t{0};
        }
        profileOn_ = on;
    }
    bool profileEnabled() const { return profileOn_; }
    /** The PC histogram, or nullptr if profiling was never enabled. */
    const obs::Profiler *profiler() const { return prof_.get(); }

    /** Toggle the metrics time-series at runtime (same lifetime rules
     *  as the profiler). */
    void
    setTimeseriesEnabled(bool on)
    {
        if (on && !tseries_)
            tseries_ = std::make_unique<obs::TimeSeries>(
                cfg_.timeseriesInterval, cfg_.timeseriesDepth);
        if (on) {
            const Tick iv = tseries_->interval();
            tsNextTick_ = (time_ / iv + 1) * iv;
        } else {
            tsNextTick_ = maxTick;
        }
        timeseriesOn_ = on;
    }
    bool timeseriesEnabled() const { return timeseriesOn_; }
    /** The ring, or nullptr if the series was never enabled. */
    const obs::TimeSeries *timeSeries() const { return tseries_.get(); }

    /** Capture a cumulative time-series point right now, stamped with
     *  `nominal`.  Used by obsBoundaryFire and by the exporters'
     *  final live point (so deltas sum to the final counters). */
    obs::TsPoint tsCapture(Tick nominal);

    /** Toggle the flight recorder at runtime (on by default via
     *  Config::flight; same lifetime rules as the tracer).  The ring
     *  itself only appears on the first flight-worthy record, so the
     *  default-on recorder costs an idle node nothing. */
    void
    setFlightEnabled(bool on)
    {
        flightOn_ = on;
        obsFlight_ = on ? flightBuf_.get() : nullptr;
    }
    bool flightEnabled() const { return flightOn_; }
    /** The flight ring, or nullptr if nothing was ever recorded. */
    const obs::TraceBuffer *flightBuffer() const
    {
        return flightBuf_.get();
    }

    /** Run-list depth of priority `pri` (0 high, 1 low), bounded walk
     *  over raw memory -- no cycle charges, safe at chain boundaries. */
    uint32_t runListDepth(int pri) const;

    /**
     * Latency samples, in cycles, from a high-priority process
     * becoming ready while low-priority code runs to its first
     * instruction issuing (the paper's "interrupt latency").
     */
    Distribution &preemptLatency() { return preemptLatency_; }

    /** Stream to trace every executed instruction to (nullptr: off). */
    void setTrace(std::ostream *os) { trace_ = os; }

    /**
     * Toggle the predecoded instruction cache at runtime
     * (architecturally invisible; bench_interp and the equivalence
     * tests run both ways).
     */
    void setPredecodeEnabled(bool on) { predecodeEnabled_ = on; }
    bool predecodeEnabled() const { return predecodeEnabled_; }
    const PredecodeCache &icache() const { return icache_; }

    /**
     * Toggle the block-compiler tier at runtime (architecturally
     * invisible; the equivalence tests run both ways).  A no-op when
     * the build cannot back the tier (see blockBackendUsable).
     */
    void setBlockCompileEnabled(bool on);
    bool blockCompileEnabled() const { return blockCompileEnabled_; }
    /** True when this build can execute superblocks (TRANSPUTER_BLOCKC
     *  and a computed-goto compiler). */
    static bool blockBackendUsable();
    ///@}

    /** @name Checkpoint/restore (src/snap) */
    ///@{
    /**
     * Capture the CPU's resumable state.  Must be called between
     * event dispatches (never from inside executeOne); the memory
     * image is captured separately by the snapshot layer.
     */
    CpuSnap exportSnap() const;

    /**
     * Overwrite the CPU with a captured state and re-schedule its
     * pending events under their original keys.  The memory image
     * must already be restored (the fetch buffer re-pins against it)
     * and the owning queue's clock already reset to the snapshot
     * tick.  The predecode cache is dropped wholesale: entries from
     * before the restore describe a memory image that no longer
     * exists.
     */
    void importSnap(const CpuSnap &s);
    ///@}

    /** @name Architectural constants (word-shape dependent) */
    ///@{
    Word enabling() const { return shape_.truncate(shape_.mostNeg + 1); }
    Word waitingAlt() const { return shape_.truncate(shape_.mostNeg + 2); }
    Word readyAlt() const { return shape_.truncate(shape_.mostNeg + 3); }
    Word timeSet() const { return shape_.truncate(shape_.mostNeg + 1); }
    Word timeNotSet() const { return shape_.truncate(shape_.mostNeg + 2); }
    Word noneSelected() const { return shape_.mask; } // -1
    ///@}

    /** Read the priority-pri clock register (1 us / 64 us ticks). */
    Word clockReg(int pri) const;

  private:
    friend class ExecContext;
    /** The threaded block backend mirrors runFused's hoisted-local
     *  discipline over the private hot state (core/blockc.cc). */
    friend class blockc::ThreadedBackend;

    /** Record a trace event at an explicit timestamp.  Compiles to
     *  nothing without TRANSPUTER_OBS; otherwise one branch on a
     *  pointer when tracing is off. */
    void
    trcAt(Tick when, obs::Ev ev, uint64_t a, uint64_t b = 0,
          uint32_t c = 0)
    {
#ifdef TRANSPUTER_OBS
        if (obsTrace_)
            obsTrace_->record(when, ev, a, b, c);
        if (flightOn_ && obs::flightWorthy(ev))
            recordFlight(when, ev, a, b, c);
#else
        (void)when; (void)ev; (void)a; (void)b; (void)c;
#endif
    }

    /**
     * The chain-boundary observation point (profiler + time-series).
     * Called with the architectural state spilled (oreg_ == 0, the
     * hot locals written back) whenever cycles_ crossed profNextCycle_
     * or time_ crossed tsNextTick_; attributes the catch-up samples
     * and captures the due snapshots, then advances the thresholds
     * past the current clocks.  Reads architectural state only, so
     * the spill/fire/reload dance in the fast tiers is safe.
     */
    void obsBoundaryFire(int tier);

    /** Record a CPU-side trace event at the local clock. */
    void
    trc(obs::Ev ev, uint64_t a, uint64_t b = 0, uint32_t c = 0)
    {
        trcAt(time_, ev, a, b, c);
    }

    /** @name Event-loop integration */
    ///@{
    void scheduleStep();
    void stepHandler();
    /** @return true if the instruction was a fused-path (kFast) one. */
    bool executeOne();
    void wakeIfIdle();
    ///@}

    /** @name Instruction execution (exec.cc) */
    ///@{
    uint8_t fetchByte();
    void executeOneSlow();
    void executePredecoded(const PredecodeCache::Entry &e);
    /** Fused inner loop over cached fast instructions; returns the
     *  number executed.  Stops at the bound, the budget, a cache
     *  miss, or any instruction it does not inline. */
    int runFused(Tick bound, int budget);
    /** @name Block-compiler tier (core/blockc.cc) */
    ///@{
    /** Execute superblocks at iptr_ while possible; returns chains
     *  retired.  Heats (and compiles) cold entry points as a side
     *  effect.  Safe no-op when the tier is off. */
    int runBlocks(Tick bound, int budget);
    /** Promotion gate: compile only where the fused tier's observed
     *  mean run length says a superblock can win (blockc.cc). */
    bool blockPromotionAllowed() const;
    /** Allocate the block cache and backend on first use (enabling
     *  the tier alone keeps an idle node small). */
    void ensureBlockTier();
    /** runFused's bail probe at jump back-edges: true when a block
     *  exists (compiling it right now if the target just crossed the
     *  heat threshold), so the fused loop hands over. */
    bool wantsBlockEntry(Word iptr);
    /** A compiled block exists at iptr (no heating, no compiling). */
    bool hasBlockAt(Word iptr) const;
    /** importSnap's block-tier leg: drop every compiled block (they
     *  describe the pre-restore memory image) and overwrite the
     *  statistics with the snapshotted values. */
    void restoreBlockTier(const obs::BlockStats &s);
    /** Host bytes of the block cache and backend, 0 while deferred. */
    size_t blockTierFootprint() const;
    ///@}
    /** Off-chip fetch-wait charges for a whole predecoded chain. */
    void chargeFetchSpan(Word start, int length);
    bool fetchBufferHolds(Word word_addr) const;
    void setFetchBuffer(Word word_addr);
    /** Forget the fetch buffer (process switch / interrupt / boot). */
    void flushFetchBuffer() { lastFetchValid_ = false; }
    /** Re-pin the fetch buffer's write generation after a restore. */
    void repinFetchBuffer();
    void execDirect(isa::Fn fn, Word operand);
    void execOp(Word operation);
    ///@}

    /** @name Evaluation stack */
    ///@{
    void push(Word v);
    Word pop();
    ///@}

    /** @name Memory helpers (charge wait states) */
    ///@{
    Word readWord(Word addr);
    void writeWord(Word addr, Word v);
    uint8_t readByte(Word addr);
    void writeByte(Word addr, uint8_t v);
    /** Read a below-workspace slot of a process. */
    Word wsRead(Word wptr, int slot);
    void wsWrite(Word wptr, int slot, Word v);
    ///@}

    /** @name Scheduler (scheduler.cc) */
    ///@{
    void enqueueProcess(Word wdesc);
    /** runp semantics: enqueue, preempt or wake as appropriate. */
    void scheduleProcess(Word wdesc);
    /** Save Iptr (optionally) and switch to the next ready process. */
    void descheduleCurrent(bool save_iptr);
    /** Timeslice check at j/lend descheduling points. */
    void timesliceCheck();
    void pickNext();
    void serviceInterrupt();
    void saveLowContext();
    void restoreLowContext();
    void chargeCycles(int64_t n);
    void setError();
    ///@}

    /** @name Channels (channel.cc) */
    ///@{
    /** Port index for a reserved channel address, or -1 if internal. */
    int portIndexFor(Word chan_addr) const;
    ChannelPort *portFor(Word chan_addr) const;
    bool isEventChannel(Word chan_addr) const;
    void channelIn(Word count, Word chan, Word ptr);
    void channelOut(Word count, Word chan, Word ptr);
    void internalIn(Word count, Word chan, Word ptr);
    void internalOut(Word count, Word chan, Word ptr);
    void copyMessage(Word dst, Word src, Word count);
    void enableChannel(Word chan);
    bool disableChannel(Word chan);
    void eventIn();
    bool enableEvent();
    bool disableEvent();
    ///@}

    /** @name Timers (timer.cc) */
    ///@{
    /** Clock value at an absolute tick for a priority. */
    Word clockAt(int pri, Tick t) const;
    /** Earliest tick at which clockReg(pri) reaches time value tv. */
    Tick tickFor(int pri, Word tv) const;
    /** True if clock has reached (AFTER-or-at) time value tv. */
    bool timeAfter(int pri, Word tv) const;
    void timerInsert(int pri, Word wptr, Word tv);
    void timerRemove(int pri, Word wptr);
    void timerExpire();
    void armTimerEvent();
    ///@}

    const std::string name_;
    const Config cfg_;
    const WordShape shape_;
    sim::EventQueue *queue_;
    uint32_t actorId_ = 0;
    uint64_t selfSeq_ = 0; ///< seq for this actor's step/timer events
    mem::Memory mem_;
    PredecodeCache icache_;
    bool predecodeEnabled_;
    // block-compiler tier (allocated only when enabled and usable)
    std::unique_ptr<blockc::BlockCache> bcache_;
    std::unique_ptr<blockc::BlockBackend> backend_;
    bool blockCompileEnabled_ = false;
    sim::StaticEvent stepEvent_; ///< allocation-free CPU-step event

    // register file (Figure 2)
    Word iptr_ = 0;
    Word wptr_ = 0;       ///< word-aligned; NotProcess when no process
    Word areg_ = 0, breg_ = 0, creg_ = 0, oreg_ = 0;
    int pri_ = 1;

    // scheduling lists (Figure 3): front/back per priority
    Word fptr_[2], bptr_[2];

    // error handling
    bool errorFlag_ = false;
    bool haltOnError_ = false;

    // timers
    bool timersRunning_ = false;
    Tick timerBase_ = 0;       ///< tick at which sttimer ran
    Word timerOffset_[2] = {0, 0};
    sim::EventId timerEvent_ = sim::invalidEventId;

    // interrupted low-priority process (shadow registers live in the
    // reserved memory save area; this flag says they are valid)
    bool lowSaved_ = false;
    Tick lowDebtTicks_ = 0;    ///< interrupted-instruction tail to repay

    // instruction fetch buffer (word-granular off-chip fetch); valid
    // only while the buffered word is unwritten (generation match) and
    // until the next process switch, interrupt or boot
    Word lastFetchWord_ = 0;
    uint32_t lastFetchGen_ = 0;
    bool lastFetchValid_ = false;

    // preemption bookkeeping
    bool inExec_ = false;      ///< inside executeOne (for wake timing)
    bool preemptPending_ = false;
    Tick hpReadyTick_ = 0;
    Tick lastInstrStart_ = 0;
    bool lastInstrInterruptible_ = false;

    // event-loop state
    CpuState state_ = CpuState::Idle;
    bool stepScheduled_ = false;
    bool killed_ = false;      ///< halted by fault::kill, not by error
    Tick stallUntil_ = 0;      ///< injected stall: no issue before this
    Tick time_ = 0;
    uint64_t cycles_ = 0;
    uint64_t instructions_ = 0;
    int64_t sliceStartCycles_ = 0;

    // external channels: out 0..3, in 0..3
    std::array<ChannelPort *, 4> outPorts_{};
    std::array<ChannelPort *, 4> inPorts_{};

    // event pin channel
    int eventPending_ = 0;
    Word eventWaiter_;         ///< wdesc blocked on event, or NotProcess
    Word eventAltWaiter_;      ///< wdesc ALT-enabled on event
    bool eventInAlt_ = false;

    // statistics (src/obs); instructions_/cycles_/icache stats stay in
    // their hot members and are folded in by counters()
    obs::Counters ctrs_;
    Tick idleSince_ = 0; ///< local clock at the last idle transition
    Distribution preemptLatency_;

    // event tracer: the ring is allocated lazily and owned here; the
    // raw pointer is the single runtime gate (null = disabled)
    std::unique_ptr<obs::TraceBuffer> traceBuf_;
    obs::TraceBuffer *obsTrace_ = nullptr;

    // flight recorder: enabled by a plain bool so 100k default-on
    // idle nodes pay no ring; the ring appears on the first
    // flight-worthy record (recordFlight, transputer.cc)
    bool flightOn_ = false;
    std::unique_ptr<obs::TraceBuffer> flightBuf_;
    obs::TraceBuffer *obsFlight_ = nullptr;

    /** Allocate-on-first-use slow path behind the flightOn_ gate. */
    void recordFlight(Tick when, obs::Ev ev, uint64_t a, uint64_t b,
                      uint32_t c);

    // sampling profiler and metrics time-series: the thresholds are
    // the only state the execution tiers test (one compare each per
    // chain); ~0 / maxTick are the disabled sentinels, so the
    // disabled fast path never branches into obsBoundaryFire
    uint64_t profNextCycle_ = ~uint64_t{0};
    Tick tsNextTick_ = maxTick;
    bool profileOn_ = false;
    bool timeseriesOn_ = false;
    std::unique_ptr<obs::Profiler> prof_;
    std::unique_ptr<obs::TimeSeries> tseries_;
    // live per-node link byte tallies (the engines' own counters are
    // aggregated per run, not sampled mid-run)
    uint64_t linkBytesOutLive_ = 0;
    uint64_t linkBytesInLive_ = 0;

    std::ostream *trace_ = nullptr;
};

} // namespace transputer::core

#endif // TRANSPUTER_CORE_TRANSPUTER_HH
