#include "fault/fault.hh"

#include "base/logging.hh"
#include "core/transputer.hh"
#include "obs/trace.hh"

namespace transputer::fault
{

/**
 * The per-line decision source.  Every probabilistic draw is guarded
 * by its (run-constant) config field, so the PRNG consumption -- and
 * with it every later decision -- is a pure function of the packet
 * sequence on this line, which the simulation engine keeps identical
 * between serial and shard-parallel runs.
 */
struct FaultInjector::Tap final : link::LineFaultTap
{
    Tap(const LineFaultConfig &c, uint64_t seed, link::Line *l,
        core::Transputer *src)
        : cfg(c), rng(seed), line(l), srcCpu(src)
    {}

    link::FaultAction
    onDataPacket(Tick at, uint8_t byte) override
    {
        link::FaultAction fa;
        if (cfg.stuckFrom > 0 && at >= cfg.stuckFrom) {
            fa.drop = true;
            mark(obs::Ev::FaultDrop, byte, 1);
            return fa;
        }
        if (cfg.dataLoss > 0 && rng.chance(cfg.dataLoss)) {
            fa.drop = true;
            mark(obs::Ev::FaultDrop, byte, 1);
            return fa;
        }
        if (cfg.corrupt > 0 && rng.chance(cfg.corrupt)) {
            fa.flip = static_cast<uint8_t>(rng.range(1, 255));
            mark(obs::Ev::FaultCorrupt, byte, fa.flip);
        }
        if (cfg.jitterChance > 0 && cfg.jitterMax > 0 &&
            rng.chance(cfg.jitterChance)) {
            fa.jitter = rng.range(1, static_cast<int64_t>(cfg.jitterMax));
            mark(obs::Ev::FaultJitter, byte,
                 static_cast<uint64_t>(fa.jitter));
        }
        return fa;
    }

    link::FaultAction
    onAckPacket(Tick at) override
    {
        link::FaultAction fa;
        if (cfg.stuckFrom > 0 && at >= cfg.stuckFrom) {
            fa.drop = true;
            mark(obs::Ev::FaultDrop, 0, 0);
            return fa;
        }
        if (cfg.ackLoss > 0 && rng.chance(cfg.ackLoss)) {
            fa.drop = true;
            mark(obs::Ev::FaultDrop, 0, 0);
            return fa;
        }
        if (cfg.jitterChance > 0 && cfg.jitterMax > 0 &&
            rng.chance(cfg.jitterChance)) {
            fa.jitter = rng.range(1, static_cast<int64_t>(cfg.jitterMax));
            mark(obs::Ev::FaultJitter, 0,
                 static_cast<uint64_t>(fa.jitter));
        }
        return fa;
    }

    /** Fault mark in the sending node's trace ring (Perfetto). */
    void
    mark(obs::Ev ev, uint64_t a, uint64_t b)
    {
        if (srcCpu)
            srcCpu->traceLink(ev, a, b, line->lineId());
    }

    LineFaultConfig cfg;
    Random rng;
    link::Line *line;
    core::Transputer *srcCpu;
};

FaultInjector::FaultInjector() = default;

FaultInjector::~FaultInjector() { disarm(); }

void
FaultInjector::arm(net::Network &net, const FaultPlan &plan)
{
    TRANSPUTER_ASSERT(!net_, "injector already armed");
    net_ = &net;

#ifndef TRANSPUTER_FAULT
    TRANSPUTER_ASSERT(!plan.anyLineFaults(),
                      "line-fault hooks compiled out (TRANSPUTER_FAULT "
                      "is OFF); rebuild or drop the line faults");
#endif

    for (const auto &lr : net.lines()) {
        const LineFaultConfig &cfg =
            plan.configFor(lr.srcNode, lr.dstNode);
        if (!cfg.any())
            continue;
        // seed per line id: independent streams, and stable across
        // serial/parallel runs of the same wiring
        const uint64_t seed =
            plan.seed * 0x9E3779B97F4A7C15ull + lr.line->lineId();
        taps_.push_back(std::make_unique<Tap>(
            cfg, seed, lr.line, &net.node(lr.srcNode)));
        lr.line->setFaultTap(taps_.back().get());
    }

    auto &q = net.queue();
    for (const auto &kv : plan.nodes) {
        core::Transputer &node = net.node(kv.first);
        const NodeFaultConfig &nc = kv.second;
        if (nc.stallAt > 0 && nc.stallFor > 0) {
            TRANSPUTER_ASSERT(nc.stallAt >= q.now(),
                              "node stall planned in the past");
            nodeEvents_.push_back(q.schedule(
                nc.stallAt,
                sim::EventKey{node.actor(), sim::chanFault,
                              ++faultSeq_},
                [&node, until = nc.stallAt + nc.stallFor] {
                    node.stall(until);
                }));
        }
        if (nc.killAt > 0) {
            TRANSPUTER_ASSERT(nc.killAt >= q.now(),
                              "node kill planned in the past");
            // silence the node's link engines along with the CPU so
            // neighbours see stuck links, not a polite peer
            std::vector<link::LinkEngine *> engines;
            net.forEachEngine([&](link::LinkEngine &e) {
                if (&e.cpu() == &node)
                    engines.push_back(&e);
            });
            nodeEvents_.push_back(q.schedule(
                nc.killAt,
                sim::EventKey{node.actor(), sim::chanFault,
                              ++faultSeq_},
                [&node, engines = std::move(engines)] {
                    node.kill();
                    for (auto *e : engines)
                        e->setDead();
                }));
        }
    }
}

void
FaultInjector::disarm()
{
    if (!net_)
        return;
    for (const auto &lr : net_->lines())
        for (const auto &tap : taps_)
            if (lr.line == tap->line)
                lr.line->setFaultTap(nullptr);
    // node events may have migrated to shard queues and back; their
    // ids stay valid on whichever queue currently holds them, and the
    // master holds everything between runs
    for (const sim::EventId id : nodeEvents_)
        net_->queue().cancel(id);
    nodeEvents_.clear();
    taps_.clear();
    net_ = nullptr;
}

FaultInjector::Stats
FaultInjector::stats() const
{
    Stats s;
    for (const auto &tap : taps_) {
        s.dataDropped += tap->line->dataDropped();
        s.acksDropped += tap->line->acksDropped();
        s.dataCorrupted += tap->line->dataCorrupted();
        s.jitter += tap->line->faultJitter();
    }
    return s;
}

} // namespace transputer::fault
