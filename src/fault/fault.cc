#include "fault/fault.hh"

#include "base/logging.hh"
#include "core/transputer.hh"
#include "obs/trace.hh"

namespace transputer::fault
{

/**
 * The per-line decision source.  Every probabilistic draw is guarded
 * by its (run-constant) config field, so the PRNG consumption -- and
 * with it every later decision -- is a pure function of the packet
 * sequence on this line, which the simulation engine keeps identical
 * between serial and shard-parallel runs.
 */
struct FaultInjector::Tap final : link::LineFaultTap
{
    Tap(const LineFaultConfig &c, uint64_t seed, link::Line *l,
        core::Transputer *src)
        : cfg(c), rng(seed), line(l), srcCpu(src)
    {}

    link::FaultAction
    onDataPacket(Tick at, uint8_t byte) override
    {
        link::FaultAction fa;
        if (cfg.stuckFrom > 0 && at >= cfg.stuckFrom) {
            fa.drop = true;
            mark(obs::Ev::FaultDrop, byte, 1);
            return fa;
        }
        if (cfg.dataLoss > 0 && rng.chance(cfg.dataLoss)) {
            fa.drop = true;
            mark(obs::Ev::FaultDrop, byte, 1);
            return fa;
        }
        if (cfg.corrupt > 0 && rng.chance(cfg.corrupt)) {
            fa.flip = static_cast<uint8_t>(rng.range(1, 255));
            mark(obs::Ev::FaultCorrupt, byte, fa.flip);
        }
        if (cfg.jitterChance > 0 && cfg.jitterMax > 0 &&
            rng.chance(cfg.jitterChance)) {
            fa.jitter = rng.range(1, static_cast<int64_t>(cfg.jitterMax));
            mark(obs::Ev::FaultJitter, byte,
                 static_cast<uint64_t>(fa.jitter));
        }
        return fa;
    }

    link::FaultAction
    onAckPacket(Tick at) override
    {
        link::FaultAction fa;
        if (cfg.stuckFrom > 0 && at >= cfg.stuckFrom) {
            fa.drop = true;
            mark(obs::Ev::FaultDrop, 0, 0);
            return fa;
        }
        if (cfg.ackLoss > 0 && rng.chance(cfg.ackLoss)) {
            fa.drop = true;
            mark(obs::Ev::FaultDrop, 0, 0);
            return fa;
        }
        if (cfg.jitterChance > 0 && cfg.jitterMax > 0 &&
            rng.chance(cfg.jitterChance)) {
            fa.jitter = rng.range(1, static_cast<int64_t>(cfg.jitterMax));
            mark(obs::Ev::FaultJitter, 0,
                 static_cast<uint64_t>(fa.jitter));
        }
        return fa;
    }

    /** Fault mark in the sending node's trace ring (Perfetto). */
    void
    mark(obs::Ev ev, uint64_t a, uint64_t b)
    {
        if (srcCpu)
            srcCpu->traceLink(ev, a, b, line->lineId());
    }

    LineFaultConfig cfg;
    Random rng;
    link::Line *line;
    core::Transputer *srcCpu;
};

FaultInjector::FaultInjector() = default;

FaultInjector::~FaultInjector() { disarm(); }

void
FaultInjector::arm(net::Network &net, const FaultPlan &plan)
{
    TRANSPUTER_ASSERT(!net_, "injector already armed");
    net_ = &net;

#ifndef TRANSPUTER_FAULT
    TRANSPUTER_ASSERT(!plan.anyLineFaults(),
                      "line-fault hooks compiled out (TRANSPUTER_FAULT "
                      "is OFF); rebuild or drop the line faults");
#endif

    for (const auto &lr : net.lines()) {
        const LineFaultConfig &cfg =
            plan.configFor(lr.srcNode, lr.dstNode);
        if (!cfg.any())
            continue;
        // seed per line id: independent streams, and stable across
        // serial/parallel runs of the same wiring
        const uint64_t seed =
            plan.seed * 0x9E3779B97F4A7C15ull + lr.line->lineId();
        taps_.push_back(std::make_unique<Tap>(
            cfg, seed, lr.line, &net.node(lr.srcNode)));
        lr.line->setFaultTap(taps_.back().get());
    }

    auto &q = net.queue();
    for (const auto &kv : plan.nodes) {
        const NodeFaultConfig &nc = kv.second;
        if (nc.stallAt > 0 && nc.stallFor > 0) {
            TRANSPUTER_ASSERT(nc.stallAt >= q.now(),
                              "node stall planned in the past");
            scheduleNodeEvent(
                net, Planned{sim::invalidEventId, kv.first, 0,
                             nc.stallAt, nc.stallAt + nc.stallFor,
                             ++faultSeq_});
        }
        if (nc.killAt > 0) {
            TRANSPUTER_ASSERT(nc.killAt >= q.now(),
                              "node kill planned in the past");
            scheduleNodeEvent(net,
                              Planned{sim::invalidEventId, kv.first,
                                      1, nc.killAt, 0, ++faultSeq_});
        }
    }
}

void
FaultInjector::scheduleNodeEvent(net::Network &net, const Planned &p)
{
    core::Transputer &node = net.node(p.node);
    auto &q = net.queue();
    Planned rec = p;
    const sim::EventKey key{node.actor(), sim::chanFault, p.seq};
    if (p.kind == 0) {
        rec.id = q.schedule(p.when, key, [&node, until = p.until] {
            node.stall(until);
        });
    } else {
        // a kill silences the whole station: the CPU, every endpoint
        // co-located with it (link engines and peripherals such as
        // routing switch ports), and both directions of every attached
        // line.  Each outgoing line first carries a peer-death
        // notification -- delivered through the normal routed path, so
        // neighbours observe the death promptly and deterministically
        // instead of timing out message by message -- and is then
        // latched dead.
        std::vector<link::LinkEndpoint *> eps;
        for (const auto &er : net.endpoints())
            if (er.homeNode == p.node)
                eps.push_back(er.ep);
        rec.id = q.schedule(
            p.when, key, [&node, eps = std::move(eps)] {
                node.kill();
                for (auto *ep : eps)
                    ep->tx().transmitPeerDeath();
                for (auto *ep : eps)
                    ep->onHostKilled();
            });
    }
    nodeEvents_.push_back(rec);
}

void
FaultInjector::disarm()
{
    if (!net_)
        return;
    for (const auto &lr : net_->lines())
        for (const auto &tap : taps_)
            if (lr.line == tap->line)
                lr.line->setFaultTap(nullptr);
    // node events may have migrated to shard queues and back; their
    // ids stay valid on whichever queue currently holds them, and the
    // master holds everything between runs
    for (const Planned &p : nodeEvents_)
        net_->queue().cancel(p.id);
    nodeEvents_.clear();
    taps_.clear();
    net_ = nullptr;
}

// ---------------------------------------------------------------------
// checkpoint/restore (src/snap)
// ---------------------------------------------------------------------

FaultInjector::FaultSnap
FaultInjector::exportSnap() const
{
    TRANSPUTER_ASSERT(net_, "snapshot of an unarmed injector");
    FaultSnap s;
    s.faultSeq = faultSeq_;
    for (const auto &tap : taps_)
        s.taps.push_back(
            TapSnap{tap->line->lineId(), tap->rng.state()});
    for (const Planned &p : nodeEvents_) {
        Tick when;
        sim::EventKey key;
        if (!net_->queue().pendingInfo(p.id, when, key))
            continue; // already fired: its effect is in the state
        s.events.push_back(
            PlannedSnap{p.node, p.kind, p.when, p.until, p.seq});
    }
    return s;
}

size_t
FaultInjector::pendingNodeEvents() const
{
    if (!net_)
        return 0;
    size_t n = 0;
    Tick when;
    sim::EventKey key;
    for (const Planned &p : nodeEvents_)
        if (net_->queue().pendingInfo(p.id, when, key))
            ++n;
    return n;
}

void
FaultInjector::armRestored(net::Network &net, const FaultPlan &plan,
                           const FaultSnap &snap)
{
    TRANSPUTER_ASSERT(!net_, "injector already armed");
    net_ = &net;
    for (const auto &lr : net.lines()) {
        const LineFaultConfig &cfg =
            plan.configFor(lr.srcNode, lr.dstNode);
        if (!cfg.any())
            continue;
        const uint64_t seed =
            plan.seed * 0x9E3779B97F4A7C15ull + lr.line->lineId();
        taps_.push_back(std::make_unique<Tap>(
            cfg, seed, lr.line, &net.node(lr.srcNode)));
        lr.line->setFaultTap(taps_.back().get());
    }
    if (taps_.size() != snap.taps.size())
        fatal("fault plan arms {} line taps but the snapshot saved "
              "{}: the plan differs from the one the snapshot was "
              "taken under",
              taps_.size(), snap.taps.size());
    for (const TapSnap &ts : snap.taps) {
        Tap *match = nullptr;
        for (const auto &tap : taps_) {
            if (tap->line->lineId() == ts.lineId) {
                match = tap.get();
                break;
            }
        }
        if (!match)
            fatal("snapshot has a fault tap on line {} the plan does "
                  "not arm", ts.lineId);
        // resume the decision stream mid-sequence
        match->rng.setState(ts.rngState);
    }
    faultSeq_ = snap.faultSeq;
    for (const PlannedSnap &e : snap.events)
        scheduleNodeEvent(net,
                          Planned{sim::invalidEventId, e.node, e.kind,
                                  e.when, e.until, e.seq});
}

FaultInjector::Stats
FaultInjector::stats() const
{
    Stats s;
    for (const auto &tap : taps_) {
        s.dataDropped += tap->line->dataDropped();
        s.acksDropped += tap->line->acksDropped();
        s.dataCorrupted += tap->line->dataCorrupted();
        s.jitter += tap->line->faultJitter();
    }
    return s;
}

} // namespace transputer::fault
