#include "fault/reliable.hh"

#include <string>

namespace transputer::fault
{

namespace
{

/** Occam source assembler: lines at a running indentation. */
class Block
{
  public:
    explicit Block(int indent) : indent_(indent) {}

    Block &
    line(int extra, const std::string &text)
    {
        src_.append(static_cast<size_t>(indent_ + extra), ' ');
        src_ += text;
        src_ += '\n';
        return *this;
    }

    std::string take() { return std::move(src_); }

  private:
    int indent_;
    std::string src_;
};

/** The frame checksum over header h and payload p (see reliable.hh:
 *  XOR alone is byte-local and survives alignment slips). */
std::string
checksumExpr(const std::string &h, const std::string &p)
{
    return "((" + h + " >< " + p + ") >< ((" + p + " << 7) \\/ (" + p +
           " >> 25)))";
}

} // namespace

std::string
reliableSendBlock(int indent, const std::string &out,
                  const std::string &ackIn,
                  const std::string &payloadExpr,
                  const std::string &seqVar, const std::string &okVar,
                  const ReliableConfig &cfg)
{
    const std::string sq = "(" + seqVar + " \\ 65536)";
    const std::string hdr =
        "((" + std::to_string(kMagic) + " * 65536) + " + sq + ")";
    const std::string ack =
        "((" + std::to_string(kAckMagic) + " * 65536) + " + sq + ")";

    Block b(indent);
    b.line(0, "VAR rl.h, rl.p, rl.a, rl.try, rl.to:");
    b.line(0, "SEQ");
    b.line(2, "rl.h := " + hdr);
    b.line(2, "rl.p := " + payloadExpr);
    b.line(2, "rl.try := 0");
    b.line(2, "rl.to := " + std::to_string(cfg.timeoutTicks));
    b.line(2, okVar + " := 0");
    b.line(2, "WHILE (" + okVar + " = 0) AND (rl.try < " +
                  std::to_string(cfg.maxRetries) + ")");
    b.line(4, "VAR rl.t:");
    b.line(4, "SEQ");
    b.line(6, out + " ! rl.h");
    b.line(6, out + " ! rl.p");
    b.line(6, out + " ! " + checksumExpr("rl.h", "rl.p"));
    b.line(6, "TIME ? rl.t");
    b.line(6, "ALT");
    b.line(8, ackIn + " ? rl.a");
    b.line(10, "IF");
    b.line(12, "rl.a = " + ack);
    b.line(14, okVar + " := 1");
    b.line(12, "TRUE");
    // a stale or mangled ack: fall out of the ALT and resend
    // immediately (no backoff step -- the wire is alive)
    b.line(14, "SKIP");
    b.line(8, "TIME ? AFTER rl.t + rl.to");
    b.line(10, "SEQ");
    b.line(12, "rl.try := rl.try + 1");
    b.line(12, "rl.to := rl.to + rl.to");
    b.line(12, "IF");
    b.line(14, "rl.to > " + std::to_string(cfg.maxTimeoutTicks));
    b.line(16, "rl.to := " + std::to_string(cfg.maxTimeoutTicks));
    b.line(14, "TRUE");
    b.line(16, "SKIP");
    b.line(2, seqVar + " := " + seqVar + " + 1");
    return b.take();
}

std::string
reliableRecvBlock(int indent, const std::string &in,
                  const std::string &ackOut, const std::string &valVar,
                  const std::string &expVar, const ReliableConfig &cfg)
{
    Block b(indent);
    b.line(0, "VAR rl.h, rl.p, rl.s, rl.q, rl.got:");
    b.line(0, "SEQ");
    b.line(2, "rl.got := 0");
    b.line(2, "WHILE rl.got = 0");
    b.line(4, "SEQ");
    b.line(6, in + " ? rl.h");
    b.line(6, in + " ? rl.p");
    b.line(6, in + " ? rl.s");
    b.line(6, "IF");
    b.line(8, "((rl.h >> 16) = " + std::to_string(kMagic) +
                  ") AND (" + checksumExpr("rl.h", "rl.p") +
                  " = rl.s)");
    b.line(10, "SEQ");
    b.line(12, "rl.q := rl.h /\\ 65535");
    b.line(12, "IF");
    b.line(14, "rl.q = (" + expVar + " \\ 65536)");
    b.line(16, "SEQ");
    b.line(18, valVar + " := rl.p");
    b.line(18, expVar + " := " + expVar + " + 1");
    b.line(18, "rl.got := 1");
    b.line(14, "TRUE");
    // duplicate of an already-delivered frame (its ack was
    // lost): drop the payload but re-ack below
    b.line(16, "SKIP");
    b.line(12, ackOut + " ! (" + std::to_string(kAckMagic) +
                   " * 65536) + rl.q");
    b.line(8, "TRUE");
    // garbled frame: drain the wire until it has been quiet
    // for drainTicks, so the coming retransmission starts on
    // a word boundary
    b.line(10, "VAR rl.t, rl.on, rl.j:");
    b.line(10, "SEQ");
    b.line(12, "rl.on := 1");
    b.line(12, "WHILE rl.on = 1");
    b.line(14, "SEQ");
    b.line(16, "TIME ? rl.t");
    b.line(16, "ALT");
    b.line(18, in + " ? rl.j");
    b.line(20, "SKIP");
    b.line(18, "TIME ? AFTER rl.t + " +
                   std::to_string(cfg.drainTicks));
    b.line(20, "rl.on := 0");
    return b.take();
}

} // namespace transputer::fault
