/**
 * @file
 * fault::ReliableChannel -- a software reliable-transport layer for
 * raw transputer links, generated as occam code that runs *on* the
 * transputers (the way the 256-node RTNN machine and other real
 * deployments did it; see DESIGN.md section 4.4).
 *
 * The hardware link protocol (src/link) has no redundancy: a dropped
 * data packet or acknowledge deadlocks the byte handshake, and a
 * corrupted byte is delivered as truth.  With link-health watchdogs
 * armed (LinkEngine::setWatchdog) a stalled transfer is abandoned
 * instead, which restores liveness but surfaces the damage as short
 * or trashed messages.  On top of that, this layer implements
 * stop-and-wait ARQ with framing:
 *
 *   data frame   [ header | payload | checksum ]   (3 words)
 *       header   = kMagic * 2^16 + (seq mod 2^16)
 *       checksum = header >< payload >< rot7(payload)
 *   ack frame    [ kAckMagic * 2^16 + (seq mod 2^16) ]  (1 word)
 *
 * The checksum mixes in the payload rotated by 7 bits (all of it
 * overflow-free occam: ><, <<, >>, \/).  A plain XOR is not enough:
 * under heavy loss a watchdog abort can slip the receiver's word
 * alignment so that a payload word picks up checksum bytes while the
 * checksum word picks up the matching payload bytes -- and because
 * retransmitted frames repeat the same bytes and XOR is byte-local,
 * such a swapped triple still satisfies checksum = header >< payload.
 * The rotation makes every checksum byte depend on non-local payload
 * bits, so byte-aligned slips are caught.  (Word layout is 32-bit:
 * the rotation pair is << 7 / >> 25.)
 *
 * The sender retransmits on a timer with bounded exponential backoff
 * and declares the link dead after maxRetries attempts; the receiver
 * accepts in-order frames, re-acknowledges duplicates, and resyncs
 * after a garbled frame by draining the wire until it has been quiet
 * for a moment (so retransmissions meet a realigned receiver).
 *
 * Correctness constraints (see DESIGN.md for the reasoning):
 *   - the engine watchdog timeout must exceed the normal ack round
 *     trip but stay below the initial occam retry timeout;
 *   - the retry timeout must exceed watchdog + drain, so every
 *     retransmission meets a receiver already re-armed at its input.
 */

#ifndef TRANSPUTER_FAULT_RELIABLE_HH
#define TRANSPUTER_FAULT_RELIABLE_HH

#include <cstdint>
#include <string>

namespace transputer::fault
{

/** Frame tags (16-bit, so tagged words stay positive on 32-bit). */
constexpr int32_t kMagic = 23130;    ///< data-frame header tag
constexpr int32_t kAckMagic = 21845; ///< ack-frame tag

/** Retry/timeout parameters, in low-priority timer ticks (64 us). */
struct ReliableConfig
{
    int timeoutTicks = 4; ///< initial ack timeout (then doubled)
    int maxRetries = 16;  ///< attempts before declaring the link dead
    int drainTicks = 2;   ///< receiver resync quiet window
    /** Backoff ceiling: the doubled timeout never exceeds this, so a
     *  long retry run keeps probing instead of sleeping forever. */
    int maxTimeoutTicks = 64;
};

/**
 * Occam block: send one word reliably.
 *
 * Emits a block at the given indentation that transmits
 * `payloadExpr` as one frame on channel `out`, collects the matching
 * acknowledge from `ackIn`, and retries with exponential backoff.
 * On exit `okVar` is 1 (delivered and acknowledged) or 0 (link
 * declared dead after maxRetries), and `seqVar` has been advanced.
 * `seqVar` must be initialised to 0 by the caller and used by no one
 * else; scratch variables are declared inside the block.
 */
std::string reliableSendBlock(int indent, const std::string &out,
                              const std::string &ackIn,
                              const std::string &payloadExpr,
                              const std::string &seqVar,
                              const std::string &okVar,
                              const ReliableConfig &cfg = {});

/**
 * Occam block: receive the next new word reliably.
 *
 * Emits a block that loops on channel `in` until an intact, in-order
 * frame arrives: duplicates are re-acknowledged and dropped, garbled
 * frames trigger the drain-until-quiet resync.  On exit `valVar`
 * holds the payload and `expVar` (the expected-sequence counter, the
 * receiver's mirror of the sender's `seqVar`; caller-initialised to
 * 0) has been advanced.  Blocks indefinitely if the sender gave up:
 * wrap in an ALT (or bound the run) to detect abandoned peers.
 */
std::string reliableRecvBlock(int indent, const std::string &in,
                              const std::string &ackOut,
                              const std::string &valVar,
                              const std::string &expVar,
                              const ReliableConfig &cfg = {});

} // namespace transputer::fault

#endif // TRANSPUTER_FAULT_RELIABLE_HH
