/**
 * @file
 * Deterministic fault injection for link networks (see DESIGN.md
 * section 4.4 "Fault model and reliable transport").
 *
 * The paper's links are perfect wires; real transputer deployments
 * (the 256-node RTNN machine, the million-node NOP proposals) had to
 * survive flaky links and dead nodes in software.  This subsystem
 * makes those scenarios simulable *reproducibly*:
 *
 *   - line faults -- byte/ack loss, bit corruption, latency jitter,
 *     a line stuck from a given tick -- are drawn from a per-line
 *     PRNG seeded with (plan seed, line id) and consulted once per
 *     packet at transmit time.  Transmit order is part of the
 *     engine's deterministic total event order, so a seeded faulty
 *     run is bit-identical between the serial and the shard-parallel
 *     simulator;
 *   - node faults -- a transient stall or permanent death at a
 *     planned tick -- are scheduled as keyed events on the victim's
 *     actor (sim::chanFault), which the parallel engine migrates to
 *     the right shard like any other pending event.
 *
 * Gating follows src/obs: a compile-time switch (TRANSPUTER_FAULT,
 * default ON) and a runtime null-pointer gate (a line with no tap
 * costs one branch per packet; an engine with watchdog 0 costs one
 * branch per transfer step).
 */

#ifndef TRANSPUTER_FAULT_FAULT_HH
#define TRANSPUTER_FAULT_FAULT_HH

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "link/link.hh"
#include "net/network.hh"
#include "sim/event_queue.hh"

namespace transputer::fault
{

/** Fault mix of one directional line.  All-zero = perfect wire. */
struct LineFaultConfig
{
    double dataLoss = 0.0; ///< P(a data packet never arrives)
    double ackLoss = 0.0;  ///< P(an ack packet never arrives)
    double corrupt = 0.0;  ///< P(data bits XORed with a random mask)
    double jitterChance = 0.0; ///< P(a packet starts late)
    Tick jitterMax = 0;        ///< late start drawn from [1, max]
    Tick stuckFrom = 0;        ///< > 0: line drops everything from here

    bool
    any() const
    {
        return dataLoss > 0 || ackLoss > 0 || corrupt > 0 ||
               (jitterChance > 0 && jitterMax > 0) || stuckFrom > 0;
    }
};

/** Planned failures of one node. */
struct NodeFaultConfig
{
    Tick stallAt = 0;  ///< > 0: freeze the node at this tick...
    Tick stallFor = 0; ///< ...for this many ticks (transient fault)
    Tick killAt = 0;   ///< > 0: permanent death at this tick
};

/**
 * A complete, serializable description of every fault a run injects.
 * Line configs are looked up by the (srcNode, dstNode) pair of
 * net::Network::lines() -- a peripheral's two lines both appear as
 * (host, host) -- falling back to `allLines`.
 */
struct FaultPlan
{
    uint64_t seed = 1;
    LineFaultConfig allLines;
    std::map<std::pair<int, int>, LineFaultConfig> lines;
    std::map<int, NodeFaultConfig> nodes;

    /** The (src -> dst) override entry, created on first use. */
    LineFaultConfig &
    line(int src, int dst)
    {
        return lines[{src, dst}];
    }

    NodeFaultConfig &node(int n) { return nodes[n]; }

    const LineFaultConfig &
    configFor(int src, int dst) const
    {
        const auto it = lines.find({src, dst});
        return it == lines.end() ? allLines : it->second;
    }

    bool
    anyLineFaults() const
    {
        if (allLines.any())
            return true;
        for (const auto &kv : lines)
            if (kv.second.any())
                return true;
        return false;
    }
};

/**
 * Installs a FaultPlan into a network: one seeded tap per faulty
 * line, one keyed event per node fault.  The injector must outlive
 * the armed network (or be disarmed first); arm() may be called once
 * per injector.
 */
class FaultInjector
{
  public:
    // out of line: Tap is incomplete here
    FaultInjector();
    ~FaultInjector();
    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * Attach the plan to the network.  Node-fault ticks must lie in
     * the future of the network's clock.  Call before run(); arming
     * while packets are in flight is allowed (decisions only apply
     * to packets transmitted afterwards).
     */
    void arm(net::Network &net, const FaultPlan &plan);

    /** Remove every tap and cancel still-pending node-fault events. */
    void disarm();

    /** Sum of injected-fault counters over the armed lines. */
    struct Stats
    {
        uint64_t dataDropped = 0;
        uint64_t acksDropped = 0;
        uint64_t dataCorrupted = 0;
        Tick jitter = 0;
    };
    Stats stats() const;

    /** @name Checkpoint/restore (src/snap)
     *
     * A snapshot of an armed injector is small: the per-line PRNG
     * states (so every future draw continues its stream mid-sequence)
     * and the node-fault events still pending, with their exact
     * dispatch keys.  The FaultPlan itself is NOT here -- the restorer
     * supplies the same plan (it is the scenario's configuration, like
     * the topology) and armRestored() checks the two agree.
     */
    ///@{
    /** One line tap's resumable state, matched by line id. */
    struct TapSnap
    {
        uint32_t lineId = 0;
        uint64_t rngState = 0;
    };

    /** One still-pending node-fault event. */
    struct PlannedSnap
    {
        int node = 0;
        uint8_t kind = 0; ///< 0: stall, 1: kill
        Tick when = 0;
        Tick until = 0;   ///< stall end (stall only)
        uint64_t seq = 0; ///< key seq on chanFault
    };

    struct FaultSnap
    {
        uint64_t faultSeq = 0;
        std::vector<TapSnap> taps;
        std::vector<PlannedSnap> events;
    };

    /** Capture the armed injector (events already fired are absent). */
    FaultSnap exportSnap() const;

    /**
     * Arm against a restored network: installs the plan's taps, then
     * overwrites each tap's PRNG with the saved mid-sequence state and
     * schedules only the saved still-pending node events under their
     * original keys.  The plan must describe the same faults as the
     * one the snapshot was taken under (mismatched taps are fatal).
     */
    void armRestored(net::Network &net, const FaultPlan &plan,
                     const FaultSnap &snap);

    /** Node-fault events still pending (save attributability). */
    size_t pendingNodeEvents() const;
    ///@}

  private:
    struct Tap;

    /** A scheduled node-fault event and how to re-create it. */
    struct Planned
    {
        sim::EventId id = sim::invalidEventId;
        int node = 0;
        uint8_t kind = 0; ///< 0: stall, 1: kill
        Tick when = 0;
        Tick until = 0;
        uint64_t seq = 0;
    };

    void scheduleNodeEvent(net::Network &net, const Planned &p);

    net::Network *net_ = nullptr;
    std::vector<std::unique_ptr<Tap>> taps_;
    std::vector<Planned> nodeEvents_;
    uint64_t faultSeq_ = 0; ///< seq for chanFault event keys
};

} // namespace transputer::fault

#endif // TRANSPUTER_FAULT_FAULT_HH
