#include "apps/flood.hh"

#include <map>

#include "base/format.hh"
#include "net/occam_boot.hh"

namespace transputer::apps
{

namespace
{

/** Encode (parent link, has east child, has south child) in one key. */
int
classKey(int parent, bool has_east, bool has_south)
{
    return parent * 4 + (has_east ? 2 : 0) + (has_south ? 1 : 0);
}

} // namespace

int
Flood::programClass(int x, int y) const
{
    const bool has_east = (y == 0 && x + 1 < cfg_.width);
    const bool has_south = (y + 1 < cfg_.height);
    const int parent =
        (y > 0) ? net::dir::north
                : (x > 0 ? net::dir::west : net::dir::north);
    return classKey(parent, has_east, has_south);
}

std::string
Flood::nodeProgram(int x, int y) const
{
    const bool has_east = (y == 0 && x + 1 < cfg_.width);
    const bool has_south = (y + 1 < cfg_.height);
    const int parent =
        (y > 0) ? net::dir::north
                : (x > 0 ? net::dir::west : net::dir::north);

    // One process per node, no per-node constants: receive the wave
    // key from the parent, forward it down the tree, then reduce the
    // children's totals plus this node's own 1 back up.  The program
    // text depends only on the position class, so any array size
    // boots from a handful of shared compiled images.
    std::string p;
    p += "CHAN up.in, up.out:\n";
    p += fmt("PLACE up.in AT LINK{}IN:\n", parent);
    p += fmt("PLACE up.out AT LINK{}OUT:\n", parent);
    if (has_east) {
        p += "CHAN east.out, east.in:\n";
        p += fmt("PLACE east.out AT LINK{}OUT:\n", net::dir::east);
        p += fmt("PLACE east.in AT LINK{}IN:\n", net::dir::east);
    }
    if (has_south) {
        p += "CHAN south.out, south.in:\n";
        p += fmt("PLACE south.out AT LINK{}OUT:\n", net::dir::south);
        p += fmt("PLACE south.in AT LINK{}IN:\n", net::dir::south);
    }
    p += "VAR key, m, c:\n"
         "WHILE TRUE\n"
         "  SEQ\n"
         "    up.in ? key\n";
    if (has_east)
        p += "    east.out ! key\n";
    if (has_south)
        p += "    south.out ! key\n";
    p += "    m := 1\n";
    if (has_east)
        p += "    east.in ? c\n"
             "    m := m + c\n";
    if (has_south)
        p += "    south.in ? c\n"
             "    m := m + c\n";
    p += "    up.out ! m\n";
    return p;
}

Flood::Flood(const FloodConfig &cfg)
    : cfg_(cfg), net_(std::make_unique<net::Network>())
{
    nodes_ = net::buildGrid(*net_, cfg_.width, cfg_.height, cfg_.node);
    if (cfg_.wrap) {
        const int w = cfg_.width, h = cfg_.height;
        if (w > 2)
            for (int y = 0; y < h; ++y)
                net_->connect(nodes_[nodeId(w - 1, y)], net::dir::east,
                              nodes_[nodeId(0, y)], net::dir::west);
        if (h > 2)
            for (int x = 1; x < w; ++x)
                net_->connect(nodes_[nodeId(x, h - 1)],
                              net::dir::south, nodes_[nodeId(x, 0)],
                              net::dir::north);
    }
    // the host injects waves / collects totals at the root's north
    // link (free even with wrap: the column-0 south wrap is omitted)
    host_ = std::make_unique<net::ConsoleSink>(net_->queue(),
                                               link::WireConfig{});
    net_->attachPeripheral(nodes_[0], net::dir::north, *host_);
    const int bpw = cfg_.node.shape.bytes;
    host_->onByte = [this, bpw](uint8_t b) {
        pendingBytes_.push_back(b);
        if (pendingBytes_.size() == static_cast<size_t>(bpw)) {
            Word v = 0;
            for (int j = bpw - 1; j >= 0; --j)
                v = (v << 8) | pendingBytes_[static_cast<size_t>(j)];
            pendingBytes_.clear();
            answers_.push_back(FloodAnswer{v, host_->queue().now()});
        }
    };

    // compile once per position class, boot the shared image
    // everywhere in that class (the dominant cost of a 100k-node
    // array would otherwise be 100k compiler runs)
    std::map<int, occam::Compiled> images;
    const auto shape = cfg_.node.shape;
    const Word mem_start = net_->node(nodes_[0]).memory().memStart();
    for (int y = 0; y < cfg_.height; ++y)
        for (int x = 0; x < cfg_.width; ++x) {
            const int key = programClass(x, y);
            auto it = images.find(key);
            if (it == images.end())
                it = images
                         .emplace(key,
                                  occam::compile(nodeProgram(x, y),
                                                 shape, mem_start))
                         .first;
            net::bootOccam(*net_, nodes_[nodeId(x, y)], it->second);
        }

    // let every node reach its steady state (blocked on the parent
    // channel), so wave timings measure the flood alone
    if (cfg_.settle)
        net_->run();
}

Flood::~Flood() = default;

void
Flood::inject(Word wave)
{
    host_->sendWord(wave, cfg_.node.shape.bytes);
}

void
Flood::runUntilAnswers(size_t n, Tick limit)
{
    auto &q = net_->queue();
    while (answers_.size() < n && q.now() < limit) {
        if (!q.runOne())
            break;
    }
}

} // namespace transputer::apps
