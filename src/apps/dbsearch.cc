#include "apps/dbsearch.hh"

#include <algorithm>

#include "base/format.hh"
#include "base/logging.hh"
#include "net/occam_boot.hh"

namespace transputer::apps
{

namespace
{

/** Synthetic record key for record i of node id (host-side copy). */
Word
recordKey(int id, int i, int key_space)
{
    return static_cast<Word>((id * 31 + i * 7) % key_space);
}

/**
 * Longest chain of spanning-tree links below node (x, y).  The
 * resilient merger's child timeout scales with this: a child's answer
 * can be delayed by the dead-child timeouts of its own subtree, so
 * windows must grow toward the root or a slow-but-alive child would
 * be mistaken for a dead one.
 */
int
depthBelow(int x, int y, int w, int h)
{
    int d = 0;
    if (y == 0 && x + 1 < w)
        d = std::max(d, 1 + depthBelow(x + 1, y, w, h));
    if (y + 1 < h)
        d = std::max(d, 1 + depthBelow(x, y + 1, w, h));
    return d;
}

} // namespace

DbSearch::DbSearch(const DbSearchConfig &cfg)
    : cfg_(cfg), net_(std::make_unique<net::Network>())
{
    nodes_ = net::buildGrid(*net_, cfg_.width, cfg_.height, cfg_.node);
    // the host injects/collects through the corner's north link
    host_ = std::make_unique<net::ConsoleSink>(net_->queue(),
                                               link::WireConfig{});
    net_->attachPeripheral(nodes_[0], net::dir::north, *host_);
    if (cfg_.linkWatchdog > 0)
        net_->setLinkWatchdogs(cfg_.linkWatchdog);
    const int bpw = cfg_.node.shape.bytes;
    host_->onByte = [this, bpw](uint8_t b) {
        pendingBytes_.push_back(b);
        if (pendingBytes_.size() == static_cast<size_t>(bpw)) {
            Word v = 0;
            for (int j = bpw - 1; j >= 0; --j)
                v = (v << 8) | pendingBytes_[static_cast<size_t>(j)];
            pendingBytes_.clear();
            // timestamp with the host endpoint's own queue: during a
            // parallel run that is the clock of the shard the host
            // lives on, not the (idle) master queue
            answers_.push_back(DbAnswer{v, host_->queue().now()});
        }
    };

    for (int y = 0; y < cfg_.height; ++y)
        for (int x = 0; x < cfg_.width; ++x)
            net::bootOccamSource(*net_, nodes_[nodeId(x, y)],
                                 nodeProgram(x, y));

    // let every node build its records and block on its request
    // channel, so query timings measure the search, not the set-up
    net_->run();
}

DbSearch::~DbSearch() = default;

std::string
DbSearch::nodeProgram(int x, int y) const
{
    // spanning tree: requests travel east along row 0 and south down
    // every column; answers merge along the reverse edges
    const bool has_east = (y == 0 && x + 1 < cfg_.width);
    const bool has_south = (y + 1 < cfg_.height);
    // parent: row-0 nodes look west (the corner looks north, at the
    // host); others look north
    const int parent =
        (y > 0) ? net::dir::north
                : (x > 0 ? net::dir::west : net::dir::north);
    const int id = nodeId(x, y);
    const int buddy =
        (id + 1) % (cfg_.width * cfg_.height); // whose backup we hold

    std::string p;
    p += fmt("DEF nrec = {}:\n", cfg_.recordsPerNode);
    if (cfg_.resilient) {
        p += fmt("DEF buddy = {}:\n", buddy);
        p += fmt("DEF rbase = {}:\n", static_cast<long long>(kRecoverBase));
        // child-collection window, in 64 us low-priority timer ticks
        p += fmt("DEF dto = {}:\n",
                 cfg_.deadTimeoutTicks *
                     std::max(1, depthBelow(x, y, cfg_.width,
                                            cfg_.height)));
    }
    p += "CHAN up.in, up.out:\n";
    p += fmt("PLACE up.in AT LINK{}IN:\n", parent);
    p += fmt("PLACE up.out AT LINK{}OUT:\n", parent);
    if (has_east) {
        p += "CHAN east.out, east.in:\n";
        p += fmt("PLACE east.out AT LINK{}OUT:\n", net::dir::east);
        p += fmt("PLACE east.in AT LINK{}IN:\n", net::dir::east);
    }
    if (has_south) {
        p += "CHAN south.out, south.in:\n";
        p += fmt("PLACE south.out AT LINK{}OUT:\n", net::dir::south);
        p += fmt("PLACE south.in AT LINK{}IN:\n", net::dir::south);
    }
    // Two concurrent processes per node, so that requests pipeline
    // through the array (paper: "requests can be pipelined through
    // the system"): the searcher forwards the request and scans the
    // local partition; the merger combines the local count with the
    // children's answers and passes the sum upstream.  The internal
    // channel between them is the only coupling, so the searcher can
    // accept the next request while the merge of the previous one is
    // still in flight.
    p += "CHAN local:\n"
         "VAR rec[nrec]:\n";
    if (cfg_.resilient)
        p += "VAR bak[nrec]:\n";
    p += "SEQ\n"
         "  SEQ i = [0 FOR nrec]\n";
    p += fmt("    rec[i] := (({} * 31) + (i * 7)) \\ {}\n", id,
             cfg_.keySpace);
    if (cfg_.resilient) {
        p += "  SEQ i = [0 FOR nrec]\n";
        p += fmt("    bak[i] := ((buddy * 31) + (i * 7)) \\ {}\n",
                 cfg_.keySpace);
    }
    p += "  PAR\n";
    if (!cfg_.resilient) {
        p += "    VAR key, cnt:\n"
             "    WHILE TRUE\n"
             "      SEQ\n"
             "        up.in ? key\n";
        // forward the request before searching locally, so the flood
        // and the local searches overlap (the paper's
        // "simultaneously")
        if (has_east)
            p += "        east.out ! key\n";
        if (has_south)
            p += "        south.out ! key\n";
        p += "        cnt := 0\n"
             "        SEQ i = [0 FOR nrec]\n"
             "          IF\n"
             "            rec[i] = key\n"
             "              cnt := cnt + 1\n"
             "            TRUE\n"
             "              SKIP\n"
             "        local ! cnt\n"
             "    VAR m, c:\n"
             "    WHILE TRUE\n"
             "      SEQ\n"
             "        local ? m\n";
        if (has_east)
            p += "        east.in ? c\n"
                 "        m := m + c\n";
        if (has_south)
            p += "        south.in ? c\n"
                 "        m := m + c\n";
        p += "        up.out ! m\n";
        return p;
    }

    // resilient searcher: recovery queries (>= rbase) select the
    // backup shard of the encoded victim instead of the local records
    p += "    VAR key, vict, isrec, cnt:\n"
         "    WHILE TRUE\n"
         "      SEQ\n"
         "        up.in ? key\n";
    if (has_east)
        p += "        east.out ! key\n";
    if (has_south)
        p += "        south.out ! key\n";
    p += "        isrec := 0\n"
         "        vict := 0\n"
         "        IF\n"
         "          key >= rbase\n"
         "            SEQ\n"
         "              isrec := 1\n";
    p += fmt("              vict := (key - rbase) / {}\n",
             cfg_.keySpace);
    p += fmt("              key := (key - rbase) \\ {}\n",
             cfg_.keySpace);
    p += "          TRUE\n"
         "            SKIP\n"
         "        cnt := 0\n"
         "        IF\n"
         "          isrec = 0\n"
         "            SEQ i = [0 FOR nrec]\n"
         "              IF\n"
         "                rec[i] = key\n"
         "                  cnt := cnt + 1\n"
         "                TRUE\n"
         "                  SKIP\n"
         "          vict = buddy\n"
         "            SEQ i = [0 FOR nrec]\n"
         "              IF\n"
         "                bak[i] = key\n"
         "                  cnt := cnt + 1\n"
         "                TRUE\n"
         "                  SKIP\n"
         "          TRUE\n"
         "            SKIP\n"
         "        local ! cnt\n";

    // resilient merger: collect whichever child answers first through
    // an ALT; a full window with no answer declares the still-silent
    // children dead (sticky -- later queries skip them at once).
    // Staying receptive to every pending child for the whole wait
    // also keeps the children's own output stalls under their link
    // watchdog while a sibling subtree is timing out.
    if (!has_east && !has_south) {
        p += "    VAR m:\n"
             "    WHILE TRUE\n"
             "      SEQ\n"
             "        local ? m\n"
             "        up.out ! m\n";
        return p;
    }
    p += "    VAR m, c, e.alive, s.alive, need.e, need.s:\n"
         "    SEQ\n";
    p += fmt("      e.alive := {}\n", has_east ? 1 : 0);
    p += fmt("      s.alive := {}\n", has_south ? 1 : 0);
    p += "      WHILE TRUE\n"
         "        SEQ\n"
         "          local ? m\n"
         "          need.e := e.alive\n"
         "          need.s := s.alive\n"
         "          WHILE (need.e = 1) OR (need.s = 1)\n"
         "            VAR t:\n"
         "            SEQ\n"
         "              TIME ? t\n"
         "              ALT\n";
    if (has_east)
        p += "                (need.e = 1) & east.in ? c\n"
             "                  SEQ\n"
             "                    m := m + c\n"
             "                    need.e := 0\n";
    if (has_south)
        p += "                (need.s = 1) & south.in ? c\n"
             "                  SEQ\n"
             "                    m := m + c\n"
             "                    need.s := 0\n";
    p += "                TIME ? AFTER t + dto\n"
         "                  SEQ\n"
         "                    IF\n"
         "                      need.e = 1\n"
         "                        e.alive := 0\n"
         "                      TRUE\n"
         "                        SKIP\n"
         "                    IF\n"
         "                      need.s = 1\n"
         "                        s.alive := 0\n"
         "                      TRUE\n"
         "                        SKIP\n"
         "                    need.e := 0\n"
         "                    need.s := 0\n"
         "          up.out ! m\n";
    return p;
}

Word
DbSearch::expectedCount(Word key) const
{
    Word total = 0;
    for (int id = 0; id < cfg_.width * cfg_.height; ++id)
        for (int i = 0; i < cfg_.recordsPerNode; ++i)
            if (recordKey(id, i, cfg_.keySpace) == key)
                ++total;
    return total;
}

Word
DbSearch::expectedNodeCount(int id, Word key) const
{
    Word total = 0;
    for (int i = 0; i < cfg_.recordsPerNode; ++i)
        if (recordKey(id, i, cfg_.keySpace) == key)
            ++total;
    return total;
}

Word
DbSearch::degradedSearch(Word key, Tick limit)
{
    TRANSPUTER_ASSERT(cfg_.resilient,
                      "degradedSearch needs a resilient array");
    const size_t before = answers_.size();
    inject(key);
    runUntilAnswers(before + 1, limit);
    TRANSPUTER_ASSERT(answers_.size() > before,
                      "no answer before the time limit");
    Word total = answers_.back().count;
    // recover the shard of every dead node from its backup holder.
    // The buddy ring places the holder (victim - 1) outside the
    // victim's own subtree, so the recovery flood -- which still
    // travels the spanning tree -- always reaches it.  A dead
    // *interior* node additionally orphans its live subtree, whose
    // shards would need a rebuilt tree to reach; leaf deaths (the
    // common single-failure demo) lose exactly the victim's shard.
    const int n = cfg_.width * cfg_.height;
    for (int victim = 0; victim < n; ++victim) {
        if (!net_->node(victim).killed())
            continue;
        const size_t got = answers_.size();
        inject(recoverKey(victim, key));
        runUntilAnswers(got + 1, limit);
        TRANSPUTER_ASSERT(answers_.size() > got,
                          "no recovery answer before the time limit");
        total += answers_.back().count;
    }
    return total;
}

void
DbSearch::inject(Word key)
{
    injectTimes_.push_back(net_->queue().now());
    host_->sendWord(key, cfg_.node.shape.bytes);
}

void
DbSearch::runUntilAnswers(size_t n, Tick limit)
{
    auto &q = net_->queue();
    while (answers_.size() < n && q.now() < limit) {
        if (!q.runOne())
            break;
    }
}

} // namespace transputer::apps
