#include "apps/dbsearch.hh"

#include "base/format.hh"
#include "net/occam_boot.hh"

namespace transputer::apps
{

namespace
{

/** Synthetic record key for record i of node id (host-side copy). */
Word
recordKey(int id, int i, int key_space)
{
    return static_cast<Word>((id * 31 + i * 7) % key_space);
}

} // namespace

DbSearch::DbSearch(const DbSearchConfig &cfg)
    : cfg_(cfg), net_(std::make_unique<net::Network>())
{
    nodes_ = net::buildGrid(*net_, cfg_.width, cfg_.height, cfg_.node);
    // the host injects/collects through the corner's north link
    host_ = std::make_unique<net::ConsoleSink>(net_->queue(),
                                               link::WireConfig{});
    net_->attachPeripheral(nodes_[0], net::dir::north, *host_);
    const int bpw = cfg_.node.shape.bytes;
    host_->onByte = [this, bpw](uint8_t b) {
        pendingBytes_.push_back(b);
        if (pendingBytes_.size() == static_cast<size_t>(bpw)) {
            Word v = 0;
            for (int j = bpw - 1; j >= 0; --j)
                v = (v << 8) | pendingBytes_[static_cast<size_t>(j)];
            pendingBytes_.clear();
            // timestamp with the host endpoint's own queue: during a
            // parallel run that is the clock of the shard the host
            // lives on, not the (idle) master queue
            answers_.push_back(DbAnswer{v, host_->queue().now()});
        }
    };

    for (int y = 0; y < cfg_.height; ++y)
        for (int x = 0; x < cfg_.width; ++x)
            net::bootOccamSource(*net_, nodes_[nodeId(x, y)],
                                 nodeProgram(x, y));

    // let every node build its records and block on its request
    // channel, so query timings measure the search, not the set-up
    net_->run();
}

DbSearch::~DbSearch() = default;

std::string
DbSearch::nodeProgram(int x, int y) const
{
    // spanning tree: requests travel east along row 0 and south down
    // every column; answers merge along the reverse edges
    const bool has_east = (y == 0 && x + 1 < cfg_.width);
    const bool has_south = (y + 1 < cfg_.height);
    // parent: row-0 nodes look west (the corner looks north, at the
    // host); others look north
    const int parent =
        (y > 0) ? net::dir::north
                : (x > 0 ? net::dir::west : net::dir::north);
    const int id = nodeId(x, y);

    std::string p;
    p += fmt("DEF nrec = {}:\n", cfg_.recordsPerNode);
    p += "CHAN up.in, up.out:\n";
    p += fmt("PLACE up.in AT LINK{}IN:\n", parent);
    p += fmt("PLACE up.out AT LINK{}OUT:\n", parent);
    if (has_east) {
        p += "CHAN east.out, east.in:\n";
        p += fmt("PLACE east.out AT LINK{}OUT:\n", net::dir::east);
        p += fmt("PLACE east.in AT LINK{}IN:\n", net::dir::east);
    }
    if (has_south) {
        p += "CHAN south.out, south.in:\n";
        p += fmt("PLACE south.out AT LINK{}OUT:\n", net::dir::south);
        p += fmt("PLACE south.in AT LINK{}IN:\n", net::dir::south);
    }
    // Two concurrent processes per node, so that requests pipeline
    // through the array (paper: "requests can be pipelined through
    // the system"): the searcher forwards the request and scans the
    // local partition; the merger combines the local count with the
    // children's answers and passes the sum upstream.  The internal
    // channel between them is the only coupling, so the searcher can
    // accept the next request while the merge of the previous one is
    // still in flight.
    p += "CHAN local:\n"
         "VAR rec[nrec]:\n"
         "SEQ\n"
         "  SEQ i = [0 FOR nrec]\n";
    p += fmt("    rec[i] := (({} * 31) + (i * 7)) \\ {}\n", id,
             cfg_.keySpace);
    p += "  PAR\n"
         "    VAR key, cnt:\n"
         "    WHILE TRUE\n"
         "      SEQ\n"
         "        up.in ? key\n";
    // forward the request before searching locally, so the flood and
    // the local searches overlap (the paper's "simultaneously")
    if (has_east)
        p += "        east.out ! key\n";
    if (has_south)
        p += "        south.out ! key\n";
    p += "        cnt := 0\n"
         "        SEQ i = [0 FOR nrec]\n"
         "          IF\n"
         "            rec[i] = key\n"
         "              cnt := cnt + 1\n"
         "            TRUE\n"
         "              SKIP\n"
         "        local ! cnt\n"
         "    VAR m, c:\n"
         "    WHILE TRUE\n"
         "      SEQ\n"
         "        local ? m\n";
    if (has_east)
        p += "        east.in ? c\n"
             "        m := m + c\n";
    if (has_south)
        p += "        south.in ? c\n"
             "        m := m + c\n";
    p += "        up.out ! m\n";
    return p;
}

Word
DbSearch::expectedCount(Word key) const
{
    Word total = 0;
    for (int id = 0; id < cfg_.width * cfg_.height; ++id)
        for (int i = 0; i < cfg_.recordsPerNode; ++i)
            if (recordKey(id, i, cfg_.keySpace) == key)
                ++total;
    return total;
}

void
DbSearch::inject(Word key)
{
    injectTimes_.push_back(net_->queue().now());
    host_->sendWord(key, cfg_.node.shape.bytes);
}

void
DbSearch::runUntilAnswers(size_t n, Tick limit)
{
    auto &q = net_->queue();
    while (answers_.size() < n && q.now() < limit) {
        if (!q.runOne())
            break;
    }
}

} // namespace transputer::apps
