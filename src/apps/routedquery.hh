/**
 * @file
 * Routed query/flood workload over the virtual-channel fabric
 * (src/route; see DESIGN.md section 4.9).
 *
 * The multi-hop counterpart of apps/dbsearch and apps/flood: a fabric
 * of any Topology (torus, hypercube, ...) where node 0 is the query
 * root and every other node runs a terminal responder.  The external
 * host injects (dest, key) pairs through a console peripheral on the
 * root; the root's occam program sends each key to its destination
 * over the routing fabric (virtual channel 0) and, in PAR, collects
 * whatever the fabric delivers back -- terminal replies (key + 1 from
 * the queried node) and undeliverable notices (control vchan 255) --
 * forwarding both to the host.
 *
 * Because terminals answer to the source field of the message they
 * received, one shared occam image serves every terminal regardless
 * of position, and the root learns which node answered from the
 * packet header, not the payload.  Exactness is checkable end to end:
 * a query to a live node must produce exactly one reply with the
 * right payload (the ARQ dedup makes duplicates impossible), and a
 * query to a dead or partitioned node must produce exactly one
 * undeliverable notice -- never silence.
 */

#ifndef TRANSPUTER_APPS_ROUTEDQUERY_HH
#define TRANSPUTER_APPS_ROUTEDQUERY_HH

#include <memory>
#include <string>
#include <vector>

#include "net/network.hh"
#include "net/peripherals.hh"
#include "route/fabric.hh"

namespace transputer::apps
{

/** Configuration of the routed query fabric. */
struct RoutedQueryConfig
{
    /** Switch topology; node 0 is the root. */
    route::Topology topo = route::Topology::torus(4, 4);
    /** Per-node configuration (small: the programs are tiny). */
    core::Config node = scaleNode();
    link::WireConfig wire;     ///< every host and trunk line
    route::SwitchConfig sw;    ///< ARQ / watchdog tuning
    int consoleLink = 1;       ///< root link wired to the console
    bool settle = true;        ///< run to steady state in the ctor

    static core::Config
    scaleNode()
    {
        core::Config c;
        c.onchipBytes = 2048;
        c.externalBytes = 0;
        c.icacheEntries = 8;
        c.blockCompile = false;
        c.flight = false;
        return c;
    }
};

/** One 3-word tuple the root forwarded to the host. */
struct RoutedAnswer
{
    Word src;   ///< replying node (or the unreachable destination)
    Word vchan; ///< 0 = terminal reply, 255 = undeliverable notice
    Word word;  ///< reply payload (key + 1) or the original vchan
    Tick when;  ///< simulation time the tuple reached the host
};

class RoutedQuery
{
  public:
    explicit RoutedQuery(const RoutedQueryConfig &cfg);
    ~RoutedQuery();

    net::Network &network() { return *net_; }
    route::Fabric &fabric() { return *fabric_; }
    const RoutedQueryConfig &config() const { return cfg_; }
    net::ConsoleSink &host() { return *host_; }

    int nodes() const { return fabric_->nodes(); }

    /** Ask node `dest` (1 <= dest < nodes()) to answer `key`. */
    void inject(Word dest, Word key);

    /** Query every terminal (1..nodes()-1) with the same key. */
    void queryAll(Word key);

    /** Run serially until n answer tuples arrived or `limit`. */
    void runUntilAnswers(size_t n, Tick limit = 60'000'000'000);

    const std::vector<RoutedAnswer> &answers() const
    {
        return answers_;
    }

    /** Replies (vchan 0) among the answers. */
    size_t replies() const;
    /** Undeliverable notices (vchan 255) among the answers. */
    size_t undeliverables() const;

    /** The occam programs (for inspection). */
    std::string rootProgram() const;
    std::string terminalProgram() const;

  private:
    RoutedQueryConfig cfg_;
    std::unique_ptr<net::Network> net_;
    std::unique_ptr<route::Fabric> fabric_;
    std::unique_ptr<net::ConsoleSink> host_;
    std::vector<RoutedAnswer> answers_;
    std::vector<uint8_t> pendingBytes_;
    std::vector<Word> pendingWords_;
};

} // namespace transputer::apps

#endif // TRANSPUTER_APPS_ROUTEDQUERY_HH
