#include "apps/routedquery.hh"

#include "base/format.hh"
#include "net/occam_boot.hh"

namespace transputer::apps
{

std::string
RoutedQuery::rootProgram() const
{
    // sender and collector in PAR so queries pipeline with answers;
    // everything the switch delivers (replies and control notices) is
    // forwarded to the external host as a 3-word tuple
    std::string p;
    p += "CHAN sw.in, sw.out, h.in, h.out:\n";
    p += "PLACE sw.in AT LINK0IN:\n";
    p += "PLACE sw.out AT LINK0OUT:\n";
    p += fmt("PLACE h.in AT LINK{}IN:\n", cfg_.consoleLink);
    p += fmt("PLACE h.out AT LINK{}OUT:\n", cfg_.consoleLink);
    p += "PAR\n"
         "  VAR d, k:\n"
         "  WHILE TRUE\n"
         "    SEQ\n"
         "      h.in ? d\n"
         "      h.in ? k\n"
         "      sw.out ! d\n"
         "      sw.out ! 0\n"
         "      sw.out ! 1\n"
         "      sw.out ! k\n"
         "  VAR src, vc, n, w:\n"
         "  WHILE TRUE\n"
         "    SEQ\n"
         "      sw.in ? src\n"
         "      sw.in ? vc\n"
         "      sw.in ? n\n"
         "      sw.in ? w\n"
         "      h.out ! src\n"
         "      h.out ! vc\n"
         "      h.out ! w\n";
    return p;
}

std::string
RoutedQuery::terminalProgram() const
{
    // position-independent: the reply destination is the source field
    // of the query, so one compiled image serves every terminal.
    // Control notices (vchan 255, e.g. "your reply was undeliverable"
    // after the root was cut off) are consumed and ignored.
    return "CHAN in, out:\n"
           "PLACE in AT LINK0IN:\n"
           "PLACE out AT LINK0OUT:\n"
           "VAR src, vc, n, w:\n"
           "WHILE TRUE\n"
           "  SEQ\n"
           "    in ? src\n"
           "    in ? vc\n"
           "    in ? n\n"
           "    in ? w\n"
           "    IF\n"
           "      vc = 0\n"
           "        SEQ\n"
           "          out ! src\n"
           "          out ! 0\n"
           "          out ! 1\n"
           "          out ! w + 1\n"
           "      TRUE\n"
           "        SKIP\n";
}

RoutedQuery::RoutedQuery(const RoutedQueryConfig &cfg)
    : cfg_(cfg), net_(std::make_unique<net::Network>())
{
    route::FabricConfig fc;
    fc.node = cfg_.node;
    fc.wire = cfg_.wire;
    fc.sw = cfg_.sw;
    fc.sw.bytesPerWord = cfg_.node.shape.bytes;
    fc.hostLink = 0;
    fabric_ = std::make_unique<route::Fabric>(*net_, cfg_.topo, fc);

    host_ = std::make_unique<net::ConsoleSink>(net_->queue(),
                                               cfg_.wire);
    net_->attachPeripheral(fabric_->netNode(0), cfg_.consoleLink,
                           *host_, cfg_.wire);
    const int bpw = cfg_.node.shape.bytes;
    host_->onByte = [this, bpw](uint8_t b) {
        pendingBytes_.push_back(b);
        if (pendingBytes_.size() < static_cast<size_t>(bpw))
            return;
        Word v = 0;
        for (int j = bpw - 1; j >= 0; --j)
            v = (v << 8) | pendingBytes_[static_cast<size_t>(j)];
        pendingBytes_.clear();
        pendingWords_.push_back(v);
        if (pendingWords_.size() == 3) {
            answers_.push_back(RoutedAnswer{
                pendingWords_[0], pendingWords_[1], pendingWords_[2],
                host_->queue().now()});
            pendingWords_.clear();
        }
    };

    const auto shape = cfg_.node.shape;
    const Word memStart =
        net_->node(fabric_->netNode(0)).memory().memStart();
    const auto rootImg = occam::compile(rootProgram(), shape, memStart);
    const auto termImg =
        occam::compile(terminalProgram(), shape, memStart);
    for (int i = 0; i < fabric_->nodes(); ++i)
        net::bootOccam(*net_, fabric_->netNode(i),
                       i == 0 ? rootImg : termImg);

    if (cfg_.settle)
        net_->run();
}

RoutedQuery::~RoutedQuery() = default;

void
RoutedQuery::inject(Word dest, Word key)
{
    const int bpw = cfg_.node.shape.bytes;
    host_->sendWord(dest, bpw);
    host_->sendWord(key, bpw);
}

void
RoutedQuery::queryAll(Word key)
{
    for (int d = 1; d < fabric_->nodes(); ++d)
        inject(static_cast<Word>(d), key);
}

void
RoutedQuery::runUntilAnswers(size_t n, Tick limit)
{
    auto &q = net_->queue();
    while (answers_.size() < n && q.now() < limit) {
        if (!q.runOne())
            break;
    }
}

size_t
RoutedQuery::replies() const
{
    size_t n = 0;
    for (const auto &a : answers_)
        if (a.vchan == 0)
            ++n;
    return n;
}

size_t
RoutedQuery::undeliverables() const
{
    size_t n = 0;
    for (const auto &a : answers_)
        if (a.vchan == route::kCtrlVchan)
            ++n;
    return n;
}

} // namespace transputer::apps
