/**
 * @file
 * A scalable flood/reduce workload: the wave propagation benchmark
 * behind the 100k-node scale runs (bench/bench_scale.cpp).
 *
 * A w x h array of transputers spans a tree rooted at the corner
 * (requests travel east along row 0 and south down every column --
 * the same spanning tree as the paper's Figure 8 search array).  The
 * host injects a wave key at the root; every node forwards the key
 * to its children, contributes 1, and the counts reduce back up the
 * tree, so the root reports exactly w*h per wave.  Outside the
 * travelling wavefront every node is idle (blocked on its parent
 * channel), which is precisely the regime the epoch-window parallel
 * engine (src/par) and the compact node state (lazy memory pages,
 * on-demand icache) are built for.
 *
 * Node programs are pure functions of the node's *position class*
 * (parent direction, which children exist), not of its index: an
 * array of any size boots from at most eight compiled images, so
 * constructing 100k nodes costs eight occam compilations plus one
 * small image copy per node.
 */

#ifndef TRANSPUTER_APPS_FLOOD_HH
#define TRANSPUTER_APPS_FLOOD_HH

#include <memory>
#include <string>
#include <vector>

#include "net/network.hh"
#include "net/peripherals.hh"

namespace transputer::apps
{

/** Configuration of the flood array. */
struct FloodConfig
{
    int width = 32;
    int height = 32;
    /**
     * Add torus wrap-around links (idle as far as the spanning tree
     * is concerned, but they change the shard adjacency the parallel
     * engine sees).  The column-0 south wrap is left out: it would
     * claim the root's north link, where the host peripheral lives.
     */
    bool wrap = false;
    /**
     * Run the network to quiescence (every node blocked on its
     * parent channel) inside the constructor, so wave timings
     * measure the flood alone.  The scale bench turns this off and
     * lets the measured parallel run cover program start-up too:
     * injecting before the nodes settle is safe (the link engines
     * buffer the host's bytes until the root asks for them).
     */
    bool settle = true;
    core::Config node = scaleNodeConfig();

    /**
     * The compact per-node configuration the scale runs use: a small
     * on-chip-only memory (the flood program plus its workspace fit
     * easily), a minimal predecode cache, and the block-compiler,
     * flight-recorder and trace machinery left off, so an idle node's
     * side structures stay under a kilobyte of host memory.  All of
     * these are acceleration/observability knobs: execution is
     * bit-identical to the default configuration.
     */
    static core::Config
    scaleNodeConfig()
    {
        core::Config c;
        c.onchipBytes = 2048;
        c.externalBytes = 0;
        c.icacheEntries = 8;
        c.blockCompile = false;
        c.flight = false;
        return c;
    }
};

/** One reduced wave total, as it arrived at the host. */
struct FloodAnswer
{
    Word count; ///< nodes reached (the whole array: w*h)
    Tick when;  ///< simulation time the total reached the host
};

/** The running flood array. */
class Flood
{
  public:
    explicit Flood(const FloodConfig &cfg);
    ~Flood();

    net::Network &network() { return *net_; }
    const FloodConfig &config() const { return cfg_; }

    /** The host-side link peripheral on the root's north link. */
    net::ConsoleSink &host() { return *host_; }

    /** What every wave must reduce to. */
    Word
    expectedCount() const
    {
        return static_cast<Word>(cfg_.width) *
               static_cast<Word>(cfg_.height);
    }

    /** Queue a wave key into the root node. */
    void inject(Word wave);

    /**
     * Run (serially) until n answers have arrived or the limit
     * passes.  Parallel runs drive network().run(limit, opts)
     * directly; answers accumulate the same way.
     */
    void runUntilAnswers(size_t n, Tick limit = 60'000'000'000);

    const std::vector<FloodAnswer> &answers() const { return answers_; }

    /** The occam program of node (x, y) (for inspection). */
    std::string nodeProgram(int x, int y) const;

  private:
    int nodeId(int x, int y) const { return y * cfg_.width + x; }
    /** Position class of (x, y): parent direction + children. */
    int programClass(int x, int y) const;

    FloodConfig cfg_;
    std::unique_ptr<net::Network> net_;
    std::vector<int> nodes_;
    std::unique_ptr<net::ConsoleSink> host_;
    std::vector<FloodAnswer> answers_;
    std::vector<uint8_t> pendingBytes_;
};

} // namespace transputer::apps

#endif // TRANSPUTER_APPS_FLOOD_HH
