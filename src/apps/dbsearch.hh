/**
 * @file
 * The concurrent database search of paper section 4.2 (Figure 8).
 *
 * A w x h array of transputers each holds a partition of a database
 * in its local memory.  A search request enters at one corner, is
 * forwarded along a spanning tree of the array ("forwarded to any
 * connected transputer which has not yet received the request") while
 * each transputer searches its own records, and the answers merge
 * back to the corner.  Requests pipeline: a further request can be
 * input before the previous answer has come out.
 *
 * Every node runs a generated occam program; the host injects query
 * keys through a link peripheral on the corner node and collects the
 * match counts.  Records are synthetic (deterministic per node) so
 * the expected counts are computable host-side.
 */

#ifndef TRANSPUTER_APPS_DBSEARCH_HH
#define TRANSPUTER_APPS_DBSEARCH_HH

#include <memory>
#include <string>
#include <vector>

#include "net/network.hh"
#include "net/peripherals.hh"

namespace transputer::apps
{

/** Configuration of the search array. */
struct DbSearchConfig
{
    int width = 4;           ///< Figure 8 uses a 4 x 4 square array
    int height = 4;
    int recordsPerNode = 200;///< paper: "each transputer can hold 200"
    int keySpace = 50;       ///< synthetic keys lie in [0, keySpace)
    core::Config node;       ///< per-node part configuration

    /**
     * Degraded-mode operation (DESIGN.md section 4.4): every node
     * also stores a backup copy of its buddy's records (node i backs
     * up node (i+1) mod N), mergers collect children through an ALT
     * with a timeout scaled to the subtree depth and remember dead
     * children, and recovery queries (see recoverKey) search a
     * victim's backup shard on the survivors.  Requires link
     * watchdogs (linkWatchdog > 0) so forwarding into a dead node
     * aborts instead of deadlocking, and queries must then be issued
     * one at a time: an aborted transfer only surfaces as a wrong
     * answer, which pipelining would let propagate.
     */
    bool resilient = false;
    Tick linkWatchdog = 0;      ///< > 0: armed on every engine
    int deadTimeoutTicks = 64;  ///< merger timeout base, 64 us ticks
};

/** One collected answer. */
struct DbAnswer
{
    Word count;  ///< number of matching records in the whole array
    Tick when;   ///< simulation time the answer arrived at the host
};

/** The running search array. */
class DbSearch
{
  public:
    explicit DbSearch(const DbSearchConfig &cfg);
    ~DbSearch();

    net::Network &network() { return *net_; }
    const DbSearchConfig &config() const { return cfg_; }

    /** The host-side link peripheral.  Exposed so checkpoint/restore
     *  (src/snap) can include it in Save/RestoreOptions; its byte
     *  stream holds every answer word the array has produced. */
    net::ConsoleSink &host() { return *host_; }

    /** Longest path from the corner, in links (paper: 24 for 128). */
    int longestPath() const { return cfg_.width + cfg_.height - 2; }

    /** Total records across the array. */
    int
    totalRecords() const
    {
        return cfg_.width * cfg_.height * cfg_.recordsPerNode;
    }

    /** Number of matches the whole array should report for key. */
    Word expectedCount(Word key) const;

    /** Number of matches node id alone holds for key. */
    Word expectedNodeCount(int id, Word key) const;

    /** Query words at or above this encode recovery searches. */
    static constexpr Word kRecoverBase = 1000000;

    /**
     * The query word that searches key in the backup copy of the
     * victim's records (resilient arrays only): every node whose
     * buddy is the victim scans its backup shard, everyone else
     * reports zero.
     */
    Word
    recoverKey(int victim, Word key) const
    {
        return kRecoverBase +
               static_cast<Word>(victim) * cfg_.keySpace + key;
    }

    /** The node holding the backup copy of victim's records. */
    int
    backupHolder(int victim) const
    {
        const int n = cfg_.width * cfg_.height;
        return (victim + n - 1) % n;
    }

    /**
     * One degraded-mode search round-trip: inject the key, collect
     * the (possibly partial) answer, then recover the shard of every
     * killed node from its backup holder.  Returns the combined
     * count; resilient arrays only, one query in flight at a time.
     */
    Word degradedSearch(Word key, Tick limit = 60'000'000'000);

    /** Queue a query key into the corner node. */
    void inject(Word key);

    /** Time at which the n-th injected query entered the wire. */
    Tick injectTime(size_t n) const { return injectTimes_.at(n); }

    /**
     * Run the simulation until the given number of answers arrived
     * (or the time limit passes).
     */
    void runUntilAnswers(size_t n, Tick limit = 60'000'000'000);

    const std::vector<DbAnswer> &answers() const { return answers_; }

    /** The generated occam program of node (x, y) (for inspection). */
    std::string nodeProgram(int x, int y) const;

  private:
    int nodeId(int x, int y) const { return y * cfg_.width + x; }

    DbSearchConfig cfg_;
    std::unique_ptr<net::Network> net_;
    std::vector<int> nodes_;
    std::unique_ptr<net::ConsoleSink> host_;
    std::vector<DbAnswer> answers_;
    std::vector<Tick> injectTimes_;
    std::vector<uint8_t> pendingBytes_;
};

} // namespace transputer::apps

#endif // TRANSPUTER_APPS_DBSEARCH_HH
